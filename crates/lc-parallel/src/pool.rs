//! Fixed-size scoped thread pool with dynamic work-index scheduling.
//!
//! The pool mirrors the GPU block scheduler: a campaign of `n` independent
//! tasks (chunks) is drained by `threads` workers that claim monotonically
//! increasing indices from a shared atomic counter. Monotonic claiming is
//! load-bearing for [`crate::LookbackScan`]: it guarantees that whenever a
//! task spins waiting for a predecessor's scan entry, that predecessor has
//! already been claimed by some worker and will eventually publish, so the
//! look-back cannot deadlock.

use std::sync::atomic::{AtomicUsize, Ordering};

use lc_telemetry::{span_in, ArgValue, Event};

/// Drain `next` with dynamic scheduling, calling `f` for every claimed
/// index. When telemetry is enabled this also accounts per-task run time
/// and per-worker busy/wait/utilization; the disabled path is the bare
/// claim loop (the `telemetry` flag is hoisted so workers pay zero
/// per-task cost). A tripped `cancel` token stops the worker at its next
/// claim: indices past that point are simply never claimed. Each claim
/// also passes through `lc_chaos::maybe_stall` (one relaxed load when no
/// fault plan is installed) so chaos soaks can perturb the schedule.
fn worker_loop<F>(
    next: &AtomicUsize,
    tasks: usize,
    grain: usize,
    mut f: F,
    telemetry: bool,
    cancel: Option<&crate::CancelToken>,
) where
    F: FnMut(usize),
{
    if !telemetry {
        loop {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                return;
            }
            lc_chaos::maybe_stall();
            let start = next.fetch_add(grain, Ordering::Relaxed);
            if start >= tasks {
                return;
            }
            for i in start..(start + grain).min(tasks) {
                f(i);
            }
        }
    }
    // Resolve histogram handles once per worker, not per task.
    let run_hist = lc_telemetry::histogram("pool.task_run_ns");
    let wait_hist = lc_telemetry::histogram("pool.worker_wait_ns");
    let start_ns = lc_telemetry::now_ns();
    let mut busy_ns = 0u64;
    let mut claimed = 0u64;
    loop {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            break;
        }
        lc_chaos::maybe_stall();
        let start = next.fetch_add(grain, Ordering::Relaxed);
        if start >= tasks {
            break;
        }
        for i in start..(start + grain).min(tasks) {
            let t0 = lc_telemetry::now_ns();
            f(i);
            let dt = lc_telemetry::now_ns().saturating_sub(t0);
            run_hist.record(dt);
            busy_ns += dt;
            claimed += 1;
        }
    }
    let total_ns = lc_telemetry::now_ns().saturating_sub(start_ns);
    let wait_ns = total_ns.saturating_sub(busy_ns);
    wait_hist.record(wait_ns);
    let mut args = vec![
        ("tasks", ArgValue::from(claimed)),
        ("busy_ns", ArgValue::from(busy_ns)),
        ("wait_ns", ArgValue::from(wait_ns)),
    ];
    let req = lc_telemetry::current_request();
    if req != 0 {
        args.push(("req", ArgValue::from(req)));
    }
    lc_telemetry::emit(Event {
        name: "worker",
        cat: "pool",
        ts_ns: start_ns,
        dur_ns: total_ns,
        tid: 0, // filled by `record`
        args,
    });
    // Scoped threads are observed "finished" before TLS destructors run,
    // so hand the buffer to the sink before the closure returns.
    lc_telemetry::flush_thread();
}

/// A reusable fixed-size thread pool.
///
/// The pool holds no long-lived threads; each [`Pool::run`] call spawns a
/// `std::thread::scope`, which keeps the API free of lifetime gymnastics
/// while still amortizing well over chunk-sized work items. (Spawn cost is
/// a few microseconds per worker; LC campaigns run for milliseconds to
/// minutes.)
///
/// # Panic propagation policy
///
/// A panic in a task closure propagates out of [`Pool::run`] / [`Pool::map`]
/// / [`Pool::fold`] on the caller's thread once all workers have stopped —
/// one bad task aborts the whole call. Callers that must survive individual
/// task failures (the campaign runner quarantining a panicking pipeline)
/// use [`Pool::try_map`], which fences each task with `catch_unwind` and
/// reports per-task outcomes instead.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Create a pool with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Create a pool sized by [`crate::default_threads`].
    pub fn with_default_threads() -> Self {
        Self::new(crate::default_threads())
    }

    /// Number of workers this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `tasks` independent work items, calling `f(index)` exactly once
    /// for every `index in 0..tasks`, with dynamic scheduling (grain 1).
    ///
    /// Indices are claimed in increasing order across all workers.
    pub fn run<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_grained(tasks, 1, f)
    }

    /// Like [`Pool::run`] but each claim takes `grain` consecutive indices,
    /// reducing counter contention for very short tasks.
    pub fn run_grained<F>(&self, tasks: usize, grain: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_grained_cancellable(tasks, grain, None, f)
    }

    /// Like [`Pool::run`], but workers additionally poll `cancel` before
    /// every claim and stop once it trips. Tasks already claimed finish
    /// normally; unclaimed indices are never started. The caller decides
    /// what a partial drain means (for the campaign runner: checkpoint
    /// and exit resumable).
    pub fn run_cancellable<F>(&self, tasks: usize, cancel: &crate::CancelToken, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_grained_cancellable(tasks, 1, Some(cancel), f)
    }

    fn run_grained_cancellable<F>(
        &self,
        tasks: usize,
        grain: usize,
        cancel: Option<&crate::CancelToken>,
        f: F,
    ) where
        F: Fn(usize) + Sync,
    {
        if tasks == 0 {
            return;
        }
        let grain = grain.max(1);
        let workers = self.threads.min(tasks);
        // Hoisted once per call: workers below branch on a plain bool, so a
        // disabled-telemetry run costs this single relaxed load in total.
        let telemetry = lc_telemetry::active();
        // Propagate the submitting thread's request scope into the
        // workers, so per-chunk stage spans stay linked to the request
        // that triggered them.
        let req = lc_telemetry::current_request();
        let _span = span_in!(
            "pool",
            "run",
            tasks = tasks,
            workers = workers,
            grain = grain
        );
        let next = AtomicUsize::new(0);
        let f = &f;
        let next = &next;
        if workers == 1 {
            // Runs on the caller's thread, which already carries `req`.
            worker_loop(next, tasks, grain, f, telemetry, cancel);
            return;
        }
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || {
                    let _scope = lc_telemetry::request_scope(req);
                    worker_loop(next, tasks, grain, f, telemetry, cancel)
                });
            }
        });
    }

    /// Like [`Pool::run`], but each worker owns a mutable scratch state
    /// created once by `init` and passed to every task that worker claims.
    ///
    /// This is the arena-reuse primitive: a worker processing hundreds of
    /// chunks allocates its stage buffers once instead of once per chunk,
    /// mirroring how a GPU thread block reuses its shared-memory staging
    /// area across grid-stride iterations. Equivalent to [`Pool::fold`]
    /// with the accumulators discarded, but without requiring a merge.
    pub fn run_with_state<S, I, F>(&self, tasks: usize, init: I, f: F)
    where
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        self.fold(tasks, init, |s, i| f(s, i), |a, _| a);
    }

    /// Like [`Pool::run_with_state`], but workers poll `cancel` before every
    /// claim and stop once it trips; unclaimed indices are never started.
    /// This is the encoder's request-scoped shape: per-worker scratch arenas
    /// plus a deadline token, so a blown deadline stops chunk fan-out at the
    /// next claim boundary while already-claimed chunks finish and publish
    /// (keeping [`crate::LookbackScan`] deadlock-free).
    pub fn run_with_state_cancellable<S, I, F>(
        &self,
        tasks: usize,
        cancel: &crate::CancelToken,
        init: I,
        f: F,
    ) where
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        self.fold_cancellable(tasks, Some(cancel), init, |s, i| f(s, i), |a, _| a);
    }

    /// Produce a `Vec` of `tasks` results, computing `f(i)` for each index
    /// in parallel. Results land in index order.
    pub fn map<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<Option<T>> = Vec::new();
        out.resize_with(tasks, || None);
        {
            let slots = crate::DisjointSlice::new(&mut out);
            self.run(tasks, |i| {
                // SAFETY: each index in 0..tasks is claimed exactly once by
                // `run`, so no two tasks touch the same slot.
                unsafe { *slots.get_mut(i) = Some(f(i)) };
            });
        }
        out.into_iter()
            .map(|v| v.expect("every slot filled by run()")) // invariant: run() fills every slot
            .collect()
    }

    /// Like [`Pool::map`], but workers stop claiming once `cancel` trips.
    /// Returns one slot per index: `Some(result)` for tasks that ran,
    /// `None` for tasks never claimed. Slots are in index order; the set
    /// of `None` slots depends on worker timing, which is exactly why
    /// callers (the campaign runner) treat them as "pending, re-run on
    /// resume" rather than as failures.
    pub fn map_cancellable<T, F>(
        &self,
        tasks: usize,
        cancel: &crate::CancelToken,
        f: F,
    ) -> Vec<Option<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<Option<T>> = Vec::new();
        out.resize_with(tasks, || None);
        {
            let slots = crate::DisjointSlice::new(&mut out);
            self.run_cancellable(tasks, cancel, |i| {
                // SAFETY: each index in 0..tasks is claimed at most once by
                // `run_cancellable`, so no two tasks touch the same slot.
                unsafe { *slots.get_mut(i) = Some(f(i)) };
            });
        }
        out
    }

    /// Like [`Pool::map`], but each task runs under `catch_unwind`: a
    /// panicking task yields `Err(panic message)` in its slot while every
    /// other task completes normally.
    ///
    /// This is the isolation primitive for long fan-out jobs (the study
    /// campaign) where one poisoned work unit must not abort thousands of
    /// healthy ones. The closure runs behind an `AssertUnwindSafe` fence;
    /// callers must not rely on shared state mutated by a task that
    /// panicked midway.
    pub fn try_map<T, F>(&self, tasks: usize, f: F) -> Vec<Result<T, String>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let f = &f;
        self.map(tasks, |i| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                .map_err(|payload| crate::panic_message(payload.as_ref()))
        })
    }

    /// Fold each worker's locally-accumulated state into a final reduction.
    ///
    /// `init` creates a per-worker accumulator, `step(acc, index)` consumes a
    /// task, and `merge` combines accumulators. This is the idiomatic
    /// "thread-local partials, then reduce" HPC pattern and avoids all
    /// sharing on the hot path.
    pub fn fold<A, I, S, M>(&self, tasks: usize, init: I, step: S, merge: M) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        S: Fn(&mut A, usize) + Sync,
        M: Fn(A, A) -> A,
    {
        self.fold_cancellable(tasks, None, init, step, merge)
    }

    fn fold_cancellable<A, I, S, M>(
        &self,
        tasks: usize,
        cancel: Option<&crate::CancelToken>,
        init: I,
        step: S,
        merge: M,
    ) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        S: Fn(&mut A, usize) + Sync,
        M: Fn(A, A) -> A,
    {
        if tasks == 0 {
            return init();
        }
        let workers = self.threads.min(tasks);
        let telemetry = lc_telemetry::active();
        let req = lc_telemetry::current_request();
        let _span = span_in!("pool", "fold", tasks = tasks, workers = workers);
        let next = AtomicUsize::new(0);
        let next = &next;
        let init = &init;
        let step = &step;
        let partials: Vec<A> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let _scope = lc_telemetry::request_scope(req);
                        let mut acc = init();
                        worker_loop(next, tasks, 1, |i| step(&mut acc, i), telemetry, cancel);
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked")) // invariant: deliberate panic propagation
                .collect()
        });
        let mut iter = partials.into_iter();
        let first = iter.next().expect("at least one worker"); // invariant: pool has >= 1 worker
        iter.fold(first, merge)
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::with_default_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn run_visits_every_index_once() {
        let pool = Pool::new(4);
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_zero_tasks_is_noop() {
        Pool::new(4).run(0, |_| panic!("must not be called"));
    }

    #[test]
    fn run_single_thread_is_sequential() {
        let pool = Pool::new(1);
        let order = std::sync::Mutex::new(Vec::new());
        pool.run(10, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_grained_visits_every_index_once() {
        let pool = Pool::new(3);
        let n = 997; // prime, not a multiple of the grain
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run_grained(n, 8, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_preserves_index_order() {
        let pool = Pool::new(8);
        let out = pool.map(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn run_with_state_reuses_per_worker_state() {
        let pool = Pool::new(3);
        let n = 500;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let states = AtomicUsize::new(0);
        pool.run_with_state(
            n,
            || {
                states.fetch_add(1, Ordering::Relaxed);
                Vec::<u8>::new()
            },
            |scratch, i| {
                scratch.push(0); // state persists across this worker's tasks
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(states.load(Ordering::Relaxed) <= 3, "one state per worker");
    }

    #[test]
    fn run_with_state_cancellable_stops_at_claim_boundary() {
        let pool = Pool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let cancel = crate::CancelToken::new();
        let cancel_ref = &cancel;
        pool.run_with_state_cancellable(n, cancel_ref, Vec::<u8>::new, |scratch, i| {
            scratch.push(0);
            if i == 29 {
                cancel_ref.cancel();
            }
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        let done: usize = hits.iter().map(|h| h.load(Ordering::Relaxed)).sum();
        assert!(
            hits[29].load(Ordering::Relaxed) == 1,
            "claimed task finished"
        );
        assert!(done < n, "cancellation must leave unclaimed tasks");
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) <= 1));
    }

    #[test]
    fn run_with_state_cancellable_untripped_matches_run_with_state() {
        let pool = Pool::new(3);
        let n = 500;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.run_with_state_cancellable(
            n,
            &crate::CancelToken::new(),
            || (),
            |(), i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn fold_sums_all_tasks() {
        let pool = Pool::new(5);
        let total = pool.fold(10_000, || 0u64, |acc, i| *acc += i as u64, |a, b| a + b);
        assert_eq!(total, 10_000u64 * 9_999 / 2);
    }

    #[test]
    fn fold_zero_tasks_returns_init() {
        let pool = Pool::new(4);
        let v = pool.fold(0, || 42u64, |_, _| panic!(), |a, _| a);
        assert_eq!(v, 42);
    }

    #[test]
    fn try_map_isolates_panicking_tasks() {
        let pool = Pool::new(4);
        let out = pool.try_map(100, |i| {
            if i % 10 == 3 {
                panic!("task {i} poisoned");
            }
            i * 2
        });
        assert_eq!(out.len(), 100);
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 3 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("poisoned"), "unexpected message: {msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    fn try_map_all_ok_matches_map() {
        let pool = Pool::new(3);
        let out: Vec<usize> = pool
            .try_map(57, |i| i + 1)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(out, (1..=57).collect::<Vec<_>>());
    }

    #[test]
    fn map_cancellable_without_cancel_matches_map() {
        let pool = Pool::new(4);
        let out = pool.map_cancellable(100, &crate::CancelToken::new(), |i| i * 3);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Some(i * 3));
        }
    }

    #[test]
    fn pre_cancelled_token_claims_nothing() {
        let pool = Pool::new(4);
        let cancel = crate::CancelToken::new();
        cancel.cancel();
        let out = pool.map_cancellable(50, &cancel, |_| panic!("must not run"));
        assert!(out.iter().all(|v| v.is_none()));
    }

    #[test]
    fn mid_run_cancel_yields_partial_prefix_free_drain() {
        let pool = Pool::new(4);
        let cancel = crate::CancelToken::new();
        let n = 10_000;
        let cancel_ref = &cancel;
        let out = pool.map_cancellable(n, cancel_ref, |i| {
            if i == 17 {
                cancel_ref.cancel();
            }
            i
        });
        // Every claimed task completed and landed in its own slot; the
        // cancel point guarantees at least one ran and (with n far larger
        // than anything 4 workers get through before noticing) at least
        // one was never claimed.
        let done: Vec<usize> = out.iter().flatten().copied().collect();
        assert!(done.contains(&17));
        assert!(done.len() < n, "cancellation must leave unclaimed tasks");
        for (i, v) in out.iter().enumerate() {
            if let Some(x) = v {
                assert_eq!(*x, i);
            }
        }
    }

    #[test]
    fn tasks_fewer_than_threads() {
        let pool = Pool::new(16);
        let sum = AtomicU64::new(0);
        pool.run(3, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }
}
