//! Satellite: table-driven deadline coverage.
//!
//! A deadline that fires before the pipeline starts, inside stage 1,
//! inside stage 2, or inside stage 3 must always terminate the request
//! with a structured `deadline_exceeded` error — and must never leak a
//! memory lease: after every case, the governor's residency is back at
//! its baseline of zero. A generous deadline (firing only after the
//! work would finish) must not perturb the result.
//!
//! The slow stages are instrumented passthrough/delegating components
//! that sleep per chunk, so the deadline reliably fires while the named
//! stage is the one consuming the clock. Cancellation is observed at
//! chunk-claim boundaries, which is exactly the granularity the token
//! plumbing promises.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lc_core::{
    Complexity, Component, ComponentKind, DecodeError, KernelStats, SpanClass, WorkClass,
};
use lc_parallel::{CancelToken, Pool};
use lc_serve::arena::MemGovernor;
use lc_serve::exec::{execute, ExecContext};
use lc_serve::proto::{ErrorKind, Op, Request, Response};

/// Per-chunk sleep inside a slow stage.
const STAGE_DELAY: Duration = Duration::from_millis(20);
/// Chunks in the test payload (96 kB total).
const CHUNKS: usize = 6;
/// A deadline short enough to fire inside the slow stage's work
/// (total slow work is CHUNKS * STAGE_DELAY on a 1-thread pool).
const SHORT_DEADLINE: Duration = Duration::from_millis(35);

/// Size-preserving passthrough that sleeps per chunk.
struct SlowMutator {
    name: &'static str,
    delay: Duration,
}

impl Component for SlowMutator {
    fn name(&self) -> &'static str {
        self.name
    }
    fn kind(&self) -> ComponentKind {
        ComponentKind::Mutator
    }
    fn word_size(&self) -> usize {
        1
    }
    fn complexity(&self) -> Complexity {
        Complexity::new(
            WorkClass::N,
            SpanClass::Const,
            WorkClass::N,
            SpanClass::Const,
        )
    }
    fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, _stats: &mut KernelStats) {
        std::thread::sleep(self.delay);
        out.extend_from_slice(input);
    }
    fn decode_chunk(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        _stats: &mut KernelStats,
    ) -> Result<(), DecodeError> {
        std::thread::sleep(self.delay);
        out.extend_from_slice(input);
        Ok(())
    }
}

/// A real reducer (RZE_1) wrapped with a per-chunk sleep, so the slow
/// stage can sit in the mandatory final-reducer slot and still be
/// applied (the test payload compresses, so RZE strictly shrinks it).
struct SlowReducer {
    name: &'static str,
    delay: Duration,
    inner: Arc<dyn Component>,
}

impl Component for SlowReducer {
    fn name(&self) -> &'static str {
        self.name
    }
    fn kind(&self) -> ComponentKind {
        ComponentKind::Reducer
    }
    fn word_size(&self) -> usize {
        self.inner.word_size()
    }
    fn complexity(&self) -> Complexity {
        self.inner.complexity()
    }
    fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
        std::thread::sleep(self.delay);
        self.inner.encode_chunk(input, out, stats);
    }
    fn decode_chunk(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        stats: &mut KernelStats,
    ) -> Result<(), DecodeError> {
        std::thread::sleep(self.delay);
        self.inner.decode_chunk(input, out, stats)
    }
}

/// Resolve test component names; everything else falls through to the
/// real registry.
fn resolver(slow_stage: usize) -> impl Fn(&str) -> Option<Arc<dyn Component>> {
    move |name: &str| -> Option<Arc<dyn Component>> {
        let delay_for = |stage: usize| {
            if stage == slow_stage {
                STAGE_DELAY
            } else {
                Duration::ZERO
            }
        };
        match name {
            "SLOW1_1" => Some(Arc::new(SlowMutator {
                name: "SLOW1_1",
                delay: delay_for(1),
            })),
            "SLOW2_1" => Some(Arc::new(SlowMutator {
                name: "SLOW2_1",
                delay: delay_for(2),
            })),
            "SLOW3_1" => Some(Arc::new(SlowReducer {
                name: "SLOW3_1",
                delay: delay_for(3),
                inner: lc_components::lookup("RZE_1").expect("RZE_1 exists"),
            })),
            other => lc_components::lookup(other),
        }
    }
}

/// Highly compressible multi-chunk payload (RZE strictly shrinks it).
fn payload() -> Vec<u8> {
    let mut data = vec![0u8; CHUNKS * lc_core::CHUNK_SIZE];
    for (i, b) in data.iter_mut().enumerate().step_by(97) {
        *b = (i % 251) as u8;
    }
    data
}

fn ctx() -> ExecContext {
    ExecContext {
        // One pool thread makes the per-chunk timing deterministic.
        pool: Pool::new(1),
        max_decoded_bytes: 1 << 30,
        mem: MemGovernor::new(Some(1 << 30)),
    }
}

/// Encode the test payload with the slow pipeline (no deadline) to get
/// an archive for the unpack cases.
fn archive_for(slow_stage: usize) -> Vec<u8> {
    let resolve = resolver(0); // no sleeps while preparing
    let pipeline = lc_core::Pipeline::parse("SLOW1_1 SLOW2_1 SLOW3_1", &resolve)
        .expect("test pipeline parses");
    let pool = Pool::new(1);
    let res = lc_core::archive::encode_with_stats(&pipeline, &payload(), &pool);
    // Applied-stage sanity: the reducer must have been applied on every
    // chunk, or the unpack cases would never execute the slow stage.
    assert!(
        res.archive.len() < payload().len(),
        "slow_stage={slow_stage}: archive did not shrink; reducer was skipped"
    );
    res.archive
}

/// The table: where the deadline fires.
#[derive(Debug, Clone, Copy)]
enum Fire {
    /// Already expired when the request starts.
    BeforePipeline,
    /// While the named stage (1-3) is consuming the clock.
    InsideStage(usize),
    /// Only after all work would complete (generous deadline).
    AfterCompletion,
}

fn run_case(op: Op, fire: Fire) {
    let (slow_stage, deadline) = match fire {
        Fire::BeforePipeline => (1, Duration::ZERO),
        Fire::InsideStage(s) => (s, SHORT_DEADLINE),
        Fire::AfterCompletion => (1, Duration::from_secs(600)),
    };
    let resolve = resolver(slow_stage);
    let ctx = ctx();
    let req = match op {
        Op::Pack => Request {
            op,
            deadline_ms: 0,
            pipeline: "SLOW1_1 SLOW2_1 SLOW3_1".to_string(),
            payload: payload(),
        },
        Op::Unpack => Request {
            op,
            deadline_ms: 0,
            pipeline: String::new(),
            payload: archive_for(slow_stage),
        },
        other => panic!("table covers pack/unpack, not {other:?}"),
    };
    assert_eq!(ctx.mem.resident_bytes(), 0, "baseline residency");
    let token = match fire {
        // "Before": the deadline is already in the past.
        Fire::BeforePipeline => {
            CancelToken::with_deadline(Instant::now() - Duration::from_millis(1))
        }
        _ => CancelToken::with_deadline(Instant::now() + deadline),
    };
    let resp = execute(&req, &resolve, &ctx, &token);
    match fire {
        Fire::AfterCompletion => {
            assert!(
                matches!(resp, Response::Ok(_)),
                "{op:?}/{fire:?}: generous deadline must not perturb the result, got {resp:?}"
            );
        }
        _ => match resp {
            Response::Err { kind, .. } => assert_eq!(
                kind,
                ErrorKind::DeadlineExceeded,
                "{op:?}/{fire:?}: wrong error kind"
            ),
            other => panic!("{op:?}/{fire:?}: expected deadline_exceeded, got {other:?}"),
        },
    }
    // No leaked scratch arenas: every lease returned on termination.
    assert_eq!(
        ctx.mem.resident_bytes(),
        0,
        "{op:?}/{fire:?}: leaked memory lease"
    );
}

#[test]
fn pack_deadline_before_pipeline() {
    run_case(Op::Pack, Fire::BeforePipeline);
}

#[test]
fn pack_deadline_inside_stage_1() {
    run_case(Op::Pack, Fire::InsideStage(1));
}

#[test]
fn pack_deadline_inside_stage_2() {
    run_case(Op::Pack, Fire::InsideStage(2));
}

#[test]
fn pack_deadline_inside_stage_3() {
    run_case(Op::Pack, Fire::InsideStage(3));
}

#[test]
fn pack_generous_deadline_completes() {
    run_case(Op::Pack, Fire::AfterCompletion);
}

#[test]
fn unpack_deadline_before_pipeline() {
    run_case(Op::Unpack, Fire::BeforePipeline);
}

#[test]
fn unpack_deadline_inside_stage_1() {
    run_case(Op::Unpack, Fire::InsideStage(1));
}

#[test]
fn unpack_deadline_inside_stage_2() {
    run_case(Op::Unpack, Fire::InsideStage(2));
}

#[test]
fn unpack_deadline_inside_stage_3() {
    run_case(Op::Unpack, Fire::InsideStage(3));
}

#[test]
fn unpack_generous_deadline_completes() {
    run_case(Op::Unpack, Fire::AfterCompletion);
}

/// The same termination + no-leak guarantee when the budget (not the
/// deadline) refuses the request: a shed also releases everything.
#[test]
fn shed_under_budget_pressure_releases_leases() {
    let resolve = resolver(0);
    let ctx = ExecContext {
        pool: Pool::new(1),
        max_decoded_bytes: 1 << 30,
        mem: MemGovernor::new(Some(1024)), // far below the payload lease
    };
    let req = Request {
        op: Op::Pack,
        deadline_ms: 0,
        pipeline: "SLOW1_1 SLOW2_1 SLOW3_1".to_string(),
        payload: payload(),
    };
    let token = CancelToken::new();
    let resp = execute(&req, &resolve, &ctx, &token);
    assert!(
        matches!(resp, Response::Shed { .. }),
        "expected shed, got {resp:?}"
    );
    assert_eq!(ctx.mem.resident_bytes(), 0, "shed leaked a lease");
}
