//! The chaos soak: 64 seeded fault plans against a live server, each
//! driving real TCP traffic, asserting the request-termination contract
//! and clean drain every time.
//!
//! Chaos plans are process-global, so every test here runs the
//! install → traffic → drain cycle strictly sequentially (one test fn
//! per concern; the 64-seed sweep is a single loop).

use std::sync::Mutex;
use std::time::Duration;

use lc_parallel::CancelToken;
use lc_serve::loadgen::{self, LoadgenConfig};
use lc_serve::proto::{Op, Request, Response};
use lc_serve::server::{ServeConfig, Server};
use lc_serve::Client;

/// Chaos plans are process-global; serialize every server lifecycle.
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn serve_cfg(chaos_seed: Option<u64>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        worker_threads: 4,
        pool_threads: 2,
        queue_capacity: 32,
        mem_budget_bytes: Some(512 << 20),
        max_payload_bytes: 64 << 20,
        max_decoded_bytes: 256 << 20,
        drain_deadline_ms: 5_000,
        chaos_seed,
        flight_dump: None,
    }
}

/// Boot a server, run one loadgen burst against it, drain, and return
/// both sides' accounting.
fn one_cycle(seed: u64) -> (lc_serve::ServeSummary, loadgen::LoadgenReport) {
    let drain = CancelToken::new();
    let server = Server::bind(serve_cfg(Some(seed)), drain.clone()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    let report = loadgen::run(&LoadgenConfig {
        addr,
        duration: Duration::from_millis(80),
        rate_rps: 250.0,
        seed,
        workers: 4,
        pipeline: "DIFF_4 RZE_4".to_string(),
        deadline_ms: 2_000,
    });
    drain.cancel();
    let summary = handle.join().expect("server thread");
    (summary, report)
}

/// 64 seeds; sockets reset, writes torn, allocations denied, workers
/// stalled — and still: every fully-read request terminates in exactly
/// one of {ok, structured error, shed, failed write}, every client
/// dispatch is accounted, and drain completes without hard abort.
#[test]
fn soak_64_seeds_exactly_once_termination_and_clean_drain() {
    let _g = locked();
    let mut totals = (0u64, 0u64, 0u64); // requests, sheds, errors
    for seed in 1..=64u64 {
        let (summary, report) = one_cycle(seed);
        assert!(
            summary.accounted(),
            "seed {seed}: server accounting broken: {summary:?}"
        );
        assert!(
            !summary.hard_aborted,
            "seed {seed}: drain escalated to hard abort: {summary:?}"
        );
        assert!(
            report.accounted(),
            "seed {seed}: client accounting broken: {report:?}"
        );
        assert!(report.sent > 0, "seed {seed}: loadgen sent nothing");
        totals.0 += summary.requests_in;
        totals.1 += summary.sheds + summary.sheds_accept;
        totals.2 += summary.responses_err;
    }
    // The sweep must actually exercise the contract: traffic flowed.
    assert!(
        totals.0 > 64,
        "soak barely ran: {} requests over 64 seeds",
        totals.0
    );
}

/// Clean-path sanity without chaos: a pack → unpack roundtrip through
/// the live server is bit-exact, and drain accounts it.
#[test]
fn roundtrip_through_live_server() {
    let _g = locked();
    let drain = CancelToken::new();
    let server = Server::bind(serve_cfg(None), drain.clone()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let gov = server.governor();
    let handle = std::thread::spawn(move || server.run());

    let data: Vec<u8> = (0..200_000u32).map(|i| (i / 64) as u8).collect();
    let client = Client::new(addr);
    let packed = match client
        .request_with_retry(
            &Request {
                op: Op::Pack,
                deadline_ms: 10_000,
                pipeline: "BIT_4 DIFF_4 RZE_4".to_string(),
                payload: data.clone(),
            },
            7,
        )
        .expect("pack exchange")
    {
        Response::Ok(bytes) => bytes,
        other => panic!("pack failed: {other:?}"),
    };
    assert!(packed.len() < data.len(), "pipeline should compress this");

    let unpacked = match client
        .request_with_retry(
            &Request {
                op: Op::Unpack,
                deadline_ms: 10_000,
                pipeline: String::new(),
                payload: packed.clone(),
            },
            8,
        )
        .expect("unpack exchange")
    {
        Response::Ok(bytes) => bytes,
        other => panic!("unpack failed: {other:?}"),
    };
    assert_eq!(unpacked, data, "roundtrip must be bit-exact");

    // Stat returns well-formed JSON naming the pipeline.
    let stat = match client
        .request_with_retry(
            &Request {
                op: Op::Stat,
                deadline_ms: 10_000,
                pipeline: String::new(),
                payload: packed,
            },
            9,
        )
        .expect("stat exchange")
    {
        Response::Ok(bytes) => String::from_utf8(bytes).expect("stat is utf-8"),
        other => panic!("stat failed: {other:?}"),
    };
    assert!(stat.contains("RZE_4"), "stat names the stages: {stat}");

    drain.cancel();
    let summary = handle.join().expect("server thread");
    assert!(summary.accounted(), "accounting: {summary:?}");
    assert_eq!(summary.responses_ok, 3);
    assert_eq!(summary.responses_err, 0);
    assert!(!summary.hard_aborted);
    assert_eq!(gov.resident_bytes(), 0, "drained server holds no leases");
}

/// Drain escalation: a long-running in-flight request plus an
/// aggressive drain deadline forces the hard-abort path — which still
/// terminates the request with a structured error and keeps the
/// accounting identity intact.
#[test]
fn hard_abort_still_terminates_structurally() {
    let _g = locked();
    let mut cfg = serve_cfg(None);
    cfg.drain_deadline_ms = 1;
    cfg.pool_threads = 1;
    let drain = CancelToken::new();
    let server = Server::bind(cfg, drain.clone()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    // A large pack (tens of MB through three stages on one pool thread)
    // keeps a worker busy well past the 1 ms drain deadline.
    let payload: Vec<u8> = (0..32_000_000u32).map(|i| (i % 47) as u8).collect();
    let req_thread = std::thread::spawn(move || {
        let client = Client::new(addr);
        client.request_once(
            &Request {
                op: Op::Pack,
                deadline_ms: 0,
                pipeline: "BIT_4 DIFF_4 RZE_4".to_string(),
                payload,
            },
            11,
        )
    });
    // Give the request time to be read and enter execution.
    std::thread::sleep(Duration::from_millis(60));
    drain.cancel();
    let summary = handle.join().expect("server thread");
    let resp = req_thread.join().expect("client thread");

    assert!(summary.accounted(), "accounting: {summary:?}");
    // Either the box was fast enough to finish the pack before the
    // escalation check ran, or the hard abort cancelled it; both are
    // structured terminations. The contract we pin: no silent drop —
    // every *fully-read* request gets a response or a structured error
    // (or its write back fails and is counted); a frame the abort cut
    // off mid-read is a connection-scoped transport error, counted on
    // the connection, never a phantom request.
    if summary.hard_aborted {
        match (summary.requests_in, &resp) {
            (1, Ok(Response::Err { .. }) | Ok(Response::Ok(_))) => {}
            (1, Err(_)) => assert_eq!(
                summary.response_write_failed, 1,
                "client saw a transport error for a read request, so the \
                 response write must be the accounted failure: {summary:?}"
            ),
            (0, Err(_)) => assert!(
                summary.conn_transport_errors >= 1,
                "frame cut off mid-read must surface on the connection: {summary:?}"
            ),
            other => panic!("hard abort yielded unaccounted outcome {other:?}"),
        }
    } else {
        assert!(
            matches!(resp, Ok(Response::Ok(_))),
            "no abort, so the pack should have completed: {resp:?}"
        );
        assert_eq!(summary.requests_in, 1);
    }
}
