//! `loadgen` — seeded open-loop load generator for a running `lc serve`.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7399 [--duration-ms 5000] [--rate 200]
//!         [--seed 1] [--workers 8] [--pipeline "DIFF_4 RZE_4"]
//!         [--deadline-ms 2000] [--out BENCH_serve.json]
//!         [--rate-sweep] [--rate-start 50] [--rate-max 3200]
//!         [--rate-factor 2.0] [--shed-threshold 0.05]
//!         [--step-duration-ms 2000]
//! ```
//!
//! Prints the report JSON to stdout and (with `--out`) writes it
//! atomically. Exits 1 on bad usage, 2 when the client-side accounting
//! identity `sent == ok + errs + failed` does not hold (a silently
//! dropped request — the bug this tool exists to catch), 0 otherwise.
//!
//! With `--rate-sweep`, a fixed-rate run happens first (that is the
//! regression-gated measurement), then the offered rate steps
//! geometrically until the shed tolerance is exceeded; the knee (best
//! goodput within tolerance) lands in the report's `rate_sweep` section.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use lc_serve::loadgen::{self, LoadgenConfig, RateSweepConfig};

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("{name}: {e}")),
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "loadgen — open-loop Poisson load generator for lc serve\n\
             --addr HOST:PORT      server to drive (required)\n\
             --duration-ms N       arrival window (default 5000)\n\
             --rate RPS            mean request rate (default 200)\n\
             --seed N              arrival-schedule seed (default 1)\n\
             --workers N           client threads (default 8)\n\
             --pipeline \"C1 C2 C3\" pack pipeline (default \"DIFF_4 RZE_4\")\n\
             --deadline-ms N       per-request deadline, 0 = none (default 2000)\n\
             --out PATH            write the report JSON atomically\n\
             --rate-sweep          after the fixed-rate run, step offered load\n\
                                   to find the shed knee (capacity estimate)\n\
             --rate-start RPS      first sweep rate (default 50)\n\
             --rate-max RPS        sweep rate ceiling (default 3200)\n\
             --rate-factor F       multiplicative sweep step (default 2.0)\n\
             --shed-threshold F    shed tolerance ending the sweep (default 0.05)\n\
             --step-duration-ms N  per-step arrival window (default 2000)"
        );
        return Ok(ExitCode::SUCCESS);
    }
    let addr_text = flag(&args, "--addr").ok_or("missing --addr HOST:PORT")?;
    let addr: SocketAddr = addr_text
        .to_socket_addrs()
        .map_err(|e| format!("--addr {addr_text}: {e}"))?
        .next()
        .ok_or_else(|| format!("--addr {addr_text}: resolves to nothing"))?;
    let pipeline = flag(&args, "--pipeline")
        .unwrap_or("DIFF_4 RZE_4")
        .to_string();
    if let Err(e) = lc_core::Pipeline::parse(&pipeline, lc_components::lookup) {
        return Err(format!("--pipeline {pipeline:?}: {e}"));
    }
    let cfg = LoadgenConfig {
        addr,
        duration: Duration::from_millis(parse(&args, "--duration-ms", 5_000u64)?),
        rate_rps: parse(&args, "--rate", 200.0f64)?,
        seed: parse(&args, "--seed", 1u64)?,
        workers: parse(&args, "--workers", 8usize)?,
        pipeline,
        deadline_ms: parse(&args, "--deadline-ms", 2_000u32)?,
    };

    let report = loadgen::run(&cfg);
    let mut value = report.to_json();
    if args.iter().any(|a| a == "--rate-sweep") {
        let sweep_cfg = RateSweepConfig {
            base: cfg.clone(),
            rate_start: parse(&args, "--rate-start", 50.0f64)?,
            rate_max: parse(&args, "--rate-max", 3_200.0f64)?,
            rate_factor: parse(&args, "--rate-factor", 2.0f64)?,
            shed_threshold: parse(&args, "--shed-threshold", 0.05f64)?,
            step_duration: Duration::from_millis(parse(&args, "--step-duration-ms", 2_000u64)?),
        };
        let sweep = loadgen::rate_sweep(&sweep_cfg);
        eprintln!(
            "rate sweep: knee at {:.0} rps offered / {:.0} rps goodput over {} step(s)",
            sweep.knee_offered_rps,
            sweep.knee_goodput_rps,
            sweep.steps.len()
        );
        if let lc_json::Value::Object(fields) = &mut value {
            fields.push(("rate_sweep".to_string(), sweep.to_json()));
        }
    }
    let json = value.pretty();
    println!("{json}");
    if let Some(path) = flag(&args, "--out") {
        lc_chaos::fs::atomic_write(
            std::path::Path::new(path),
            json.as_bytes(),
            lc_chaos::fs::SyncPolicy::default(),
        )
        .map_err(|e| format!("{path}: {e}"))?;
    }
    if !report.accounted() {
        eprintln!(
            "error: kind=accounting exit=2 sent={} != ok={} + errs={} + failed={}",
            report.sent, report.ok, report.errs, report.failed
        );
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: kind=usage exit=1 {msg}");
            ExitCode::FAILURE
        }
    }
}
