//! Request execution: one fully-read [`Request`] in, exactly one
//! [`Response`] out.
//!
//! This module is where the termination contract is enforced for the
//! *work* half of a request's life: every path through [`execute`]
//! returns a `Response` — success, structured error, or shed — and every
//! byte of request memory is leased from the [`MemGovernor`] and
//! released when the returned response is dropped, whichever of those
//! paths ran. Deadlines arrive as a [`CancelToken`] carrying an
//! `Instant`; the cancellable archive paths poll it at every chunk claim
//! boundary, so a blown deadline surfaces as a structured
//! `deadline_exceeded` error within one chunk's worth of work.

use std::sync::Arc;
use std::time::Instant;

use lc_core::{archive, Component, DecodeError, Pipeline};
use lc_parallel::{CancelToken, Pool};

use crate::arena::MemGovernor;
use crate::proto::{ErrorKind, Op, Request, Response};

/// Per-request execution limits and shared state.
pub struct ExecContext {
    /// The stage-execution pool shared by every request.
    pub pool: Pool,
    /// Decompression-bomb guard for `unpack`.
    pub max_decoded_bytes: u64,
    /// Request-memory governor (admission control).
    pub mem: Arc<MemGovernor>,
}

/// Admission headroom factor: a request leases its payload size twice
/// over (input + comparable-sized output) plus a fixed floor for stage
/// scratch. Deliberately coarse — the governor bounds aggregate
/// pressure, it does not meter exact allocations.
const LEASE_FLOOR_BYTES: u64 = 64 * 1024;

/// What a refused admission tells the client to do: spread retries a
/// few tens of milliseconds out rather than hammering a loaded server.
pub const SHED_RETRY_AFTER_MS: u32 = 25;

fn shed() -> Response {
    lc_telemetry::counter("serve.shed_mem").add(1);
    Response::Shed {
        retry_after_ms: SHED_RETRY_AFTER_MS,
    }
}

fn cancel_response(cancel: &CancelToken) -> Response {
    if cancel.deadline_exceeded() {
        Response::Err {
            kind: ErrorKind::DeadlineExceeded,
            message: "request deadline exceeded".into(),
        }
    } else {
        Response::Err {
            kind: ErrorKind::Internal,
            message: "request cancelled by server shutdown".into(),
        }
    }
}

fn decode_error_response(e: DecodeError, cancel: &CancelToken) -> Response {
    match e {
        DecodeError::Cancelled => cancel_response(cancel),
        DecodeError::TooLarge { .. } => Response::Err {
            kind: ErrorKind::Limit,
            message: e.to_string(),
        },
        other => Response::Err {
            kind: ErrorKind::Decode,
            message: other.to_string(),
        },
    }
}

/// Execute one request under `cancel` and return its termination.
///
/// `resolve` maps stage names to components; production passes
/// `lc_components::lookup`, tests substitute instrumented components.
pub fn execute<R>(req: &Request, resolve: &R, ctx: &ExecContext, cancel: &CancelToken) -> Response
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    let _span = lc_telemetry::span_in!("serve", "execute", op = req.op.label());
    // Admission: lease the request's working set or shed. Stat and
    // Debug only touch metadata, so they skip the payload-sized lease.
    let lease_bytes = match req.op {
        Op::Stat | Op::Debug => LEASE_FLOOR_BYTES,
        _ => (req.payload.len() as u64)
            .saturating_mul(2)
            .saturating_add(LEASE_FLOOR_BYTES),
    };
    let Some(mut lease) = ctx.mem.try_lease(lease_bytes) else {
        return shed();
    };
    // A deadline that fired while the request sat in the accept queue
    // still terminates structurally ("before stage 1").
    if cancel.is_cancelled() {
        return cancel_response(cancel);
    }
    match req.op {
        Op::Pack => {
            let pipeline = match Pipeline::parse(&req.pipeline, resolve) {
                Ok(p) => p,
                Err(e) => {
                    return Response::Err {
                        kind: ErrorKind::Usage,
                        message: format!("bad pipeline {:?}: {e}", req.pipeline),
                    }
                }
            };
            match archive::encode_cancellable(&pipeline, &req.payload, &ctx.pool, cancel) {
                Some(result) => Response::Ok(result.archive),
                None => cancel_response(cancel),
            }
        }
        Op::Unpack => {
            // Learn the declared output size and grow the lease before
            // the output buffer exists; refusal sheds, exactly like
            // front-door admission.
            match archive::parse_header(&req.payload) {
                Ok(header) => {
                    if header.original_len <= ctx.max_decoded_bytes
                        && !lease.grow(header.original_len)
                    {
                        return shed();
                    }
                }
                Err(e) => return decode_error_response(e, cancel),
            }
            match archive::decode_bounded_cancellable(
                &req.payload,
                resolve,
                &ctx.pool,
                ctx.max_decoded_bytes,
                cancel,
            ) {
                Ok(bytes) => Response::Ok(bytes),
                Err(e) => decode_error_response(e, cancel),
            }
        }
        Op::Salvage => match archive::decode_salvage_bounded(
            &req.payload,
            resolve,
            &ctx.pool,
            ctx.max_decoded_bytes,
        ) {
            Ok((bytes, report)) => {
                if report.is_clean() {
                    Response::Ok(bytes)
                } else {
                    Response::Err {
                        kind: ErrorKind::Salvage,
                        message: format!(
                            "salvage recovered {} of {} chunks (archive crc ok: {})",
                            report.recovered,
                            report.recovered + report.lost,
                            report.archive_crc_ok
                        ),
                    }
                }
            }
            Err(e) => decode_error_response(e, cancel),
        },
        Op::Stat => match archive::parse_header(&req.payload) {
            Ok(header) => {
                let v = lc_json::Value::object([
                    ("version", lc_json::Value::from(u64::from(header.version))),
                    (
                        "stages",
                        lc_json::Value::array(
                            header
                                .stage_names
                                .iter()
                                .map(|s| lc_json::Value::from(s.as_str())),
                        ),
                    ),
                    ("original_len", lc_json::Value::from(header.original_len)),
                    ("crc32", lc_json::Value::from(u64::from(header.crc32))),
                    ("chunks", lc_json::Value::from(u64::from(header.chunks))),
                ]);
                Response::Ok(v.dump().into_bytes())
            }
            Err(e) => decode_error_response(e, cancel),
        },
        Op::Debug => {
            if lc_telemetry::flight::armed() {
                Response::Ok(lc_telemetry::flight::dump_jsonl().into_bytes())
            } else {
                Response::Err {
                    kind: ErrorKind::Usage,
                    message: "flight recorder is not armed on this server".into(),
                }
            }
        }
    }
}

/// Build the per-request cancel token: the server's abort token (tripped
/// by forced drain) plus this request's deadline, if any.
pub fn request_token(abort: &CancelToken, deadline_ms: u32, received: Instant) -> CancelToken {
    if deadline_ms == 0 {
        abort.clone()
    } else {
        abort.child_with_deadline(received + std::time::Duration::from_millis(deadline_ms.into()))
    }
}
