//! Request-memory governance: the serving reuse of the campaign's
//! `--mem-budget-mb` idea.
//!
//! Every request must lease its working-set estimate from the server's
//! [`MemGovernor`] before any payload-sized allocation happens. A lease
//! that would push residency past the budget is refused — the server
//! sheds the request with a `retry_after` hint instead of growing — and
//! the chaos layer's allocation-denial faults ([`lc_chaos::alloc_allowed`])
//! inject refusals on top, so the shed path is exercised even when the
//! budget itself never fills.
//!
//! Leases are RAII ([`MemLease`]): dropping one returns its bytes, which
//! is what makes "no leaked scratch arenas" a checkable invariant —
//! after a request terminates (response, error, *or* deadline-out),
//! [`MemGovernor::resident_bytes`] must be back at its baseline. The
//! deadline table-test asserts exactly that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared request-memory budget and residency accounting.
#[derive(Debug)]
pub struct MemGovernor {
    /// Budget in bytes; `u64::MAX` means ungoverned.
    budget: u64,
    resident: AtomicU64,
}

impl MemGovernor {
    /// A governor with a byte budget (`None` = ungoverned).
    pub fn new(budget_bytes: Option<u64>) -> Arc<Self> {
        Arc::new(Self {
            budget: budget_bytes.unwrap_or(u64::MAX),
            resident: AtomicU64::new(0),
        })
    }

    /// Bytes currently leased by in-flight requests.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// The configured budget (`u64::MAX` when ungoverned).
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Try to lease `bytes` for one request. Refused when the budget
    /// would be exceeded or the chaos plan denies the admission; the
    /// caller sheds. The gauge `serve.mem_resident_bytes` tracks the
    /// post-decision level either way.
    pub fn try_lease(self: &Arc<Self>, bytes: u64) -> Option<MemLease> {
        if !lc_chaos::alloc_allowed(bytes) {
            return None;
        }
        // CAS loop: concurrent admissions must not jointly overshoot.
        let mut cur = self.resident.load(Ordering::Relaxed);
        loop {
            let next = cur.checked_add(bytes)?;
            if next > self.budget {
                return None;
            }
            match self.resident.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        lc_telemetry::gauge("serve.mem_resident_bytes").set(self.resident_bytes());
        Some(MemLease {
            gov: Arc::clone(self),
            bytes,
        })
    }
}

/// RAII lease of request memory; dropping returns the bytes.
#[derive(Debug)]
pub struct MemLease {
    gov: Arc<MemGovernor>,
    bytes: u64,
}

impl MemLease {
    /// Bytes this lease currently holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grow the lease by `extra` bytes (an unpack that learned its
    /// declared output size). `false` leaves the lease unchanged — the
    /// caller sheds or errors, and the original bytes still release on
    /// drop.
    pub fn grow(&mut self, extra: u64) -> bool {
        if !lc_chaos::alloc_allowed(extra) {
            return false;
        }
        let mut cur = self.gov.resident.load(Ordering::Relaxed);
        loop {
            let next = match cur.checked_add(extra) {
                Some(n) if n <= self.gov.budget => n,
                _ => return false,
            };
            match self.gov.resident.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.bytes += extra;
        lc_telemetry::gauge("serve.mem_resident_bytes").set(self.gov.resident_bytes());
        true
    }
}

impl Drop for MemLease {
    fn drop(&mut self) {
        self.gov.resident.fetch_sub(self.bytes, Ordering::Relaxed);
        lc_telemetry::gauge("serve.mem_resident_bytes").set(self.gov.resident_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_account_and_release() {
        let gov = MemGovernor::new(Some(1000));
        assert_eq!(gov.resident_bytes(), 0);
        let a = gov.try_lease(400).unwrap();
        let b = gov.try_lease(500).unwrap();
        assert_eq!(gov.resident_bytes(), 900);
        assert!(gov.try_lease(200).is_none(), "budget refuses overshoot");
        drop(a);
        assert_eq!(gov.resident_bytes(), 500);
        let c = gov.try_lease(200).unwrap();
        assert_eq!(gov.resident_bytes(), 700);
        drop(b);
        drop(c);
        assert_eq!(gov.resident_bytes(), 0, "all leases return to baseline");
    }

    #[test]
    fn grow_respects_budget() {
        let gov = MemGovernor::new(Some(1000));
        let mut lease = gov.try_lease(300).unwrap();
        assert!(lease.grow(600));
        assert_eq!(lease.bytes(), 900);
        assert!(!lease.grow(200), "grow past budget refused");
        assert_eq!(lease.bytes(), 900, "failed grow leaves lease unchanged");
        drop(lease);
        assert_eq!(gov.resident_bytes(), 0);
    }

    #[test]
    fn ungoverned_admits_everything() {
        let gov = MemGovernor::new(None);
        let lease = gov.try_lease(u64::MAX / 4).unwrap();
        drop(lease);
        assert_eq!(gov.resident_bytes(), 0);
    }
}
