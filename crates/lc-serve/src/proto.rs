//! The wire protocol: little-endian, length-prefixed binary frames over
//! a byte stream (TCP in production, in-memory cursors in tests).
//!
//! A connection carries a sequence of request frames from the client and
//! one response frame per request from the server. Framing is explicit —
//! every variable-length field is preceded by its byte length — so a
//! torn transfer is always detectable as a short read, never silently
//! reinterpreted.
//!
//! ```text
//! request  := op:u8  deadline_ms:u32  pipeline_len:u16  payload_len:u32
//!             pipeline:[u8; pipeline_len]  payload:[u8; payload_len]
//! response := status:u8 body
//!   status 0 (ok)    body := body_len:u32  bytes:[u8; body_len]
//!   status 1 (error) body := kind_len:u16  kind:[u8]  msg_len:u32  msg:[u8]
//!   status 2 (shed)  body := retry_after_ms:u32
//! ```
//!
//! All socket I/O goes through [`lc_chaos::net`], so an installed
//! [`lc_chaos::FaultPlan::serve`] perturbs reads and writes on both
//! sides of the wire exactly as it does the durable-file paths.
//!
//! The **request-termination contract**: once a server has fully read a
//! request frame, it owes the connection exactly one response frame —
//! ok, error, or shed. A request whose response cannot be written
//! (connection reset) is still accounted, as `response_write_failed`.

use std::io::{self, Read, Write};

use lc_chaos::net::{read_full, write_all};

/// Hard wire-format cap on any single length field. Guards the frame
/// parser against hostile 4 GiB declarations before the configurable
/// per-server limits are even consulted.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// The operations the server exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Encode raw payload bytes with the request's pipeline.
    Pack,
    /// Decode an archive payload back to raw bytes.
    Unpack,
    /// Best-effort decode of a damaged archive (clean recoveries only).
    Salvage,
    /// Parse an archive header and return its metadata as JSON.
    Stat,
    /// Dump the server's flight recorder as JSONL (observability op;
    /// payload and pipeline are ignored). Errors with `usage` when the
    /// recorder is not armed.
    Debug,
}

impl Op {
    fn code(self) -> u8 {
        match self {
            Op::Pack => 1,
            Op::Unpack => 2,
            Op::Salvage => 3,
            Op::Stat => 4,
            Op::Debug => 5,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        match c {
            1 => Some(Op::Pack),
            2 => Some(Op::Unpack),
            3 => Some(Op::Salvage),
            4 => Some(Op::Stat),
            5 => Some(Op::Debug),
            _ => None,
        }
    }

    /// The CLI/diagnostic spelling.
    pub fn label(self) -> &'static str {
        match self {
            Op::Pack => "pack",
            Op::Unpack => "unpack",
            Op::Salvage => "salvage",
            Op::Stat => "stat",
            Op::Debug => "debug",
        }
    }
}

/// Structured error categories a response can carry. The label is the
/// wire form; clients match on it, so labels are a compatibility
/// surface and never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request's deadline fired before the work completed.
    DeadlineExceeded,
    /// The payload failed to decode (corrupt/truncated/unknown stage).
    Decode,
    /// A size limit refused the work (bomb guard, request cap).
    Limit,
    /// The request itself is malformed (bad pipeline, unknown op use).
    Usage,
    /// Salvage ran but lost chunks; the payload is not cleanly
    /// recoverable.
    Salvage,
    /// The server could not complete the request (draining, internal
    /// failure).
    Internal,
}

impl ErrorKind {
    /// Wire and log spelling.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Decode => "decode",
            ErrorKind::Limit => "limit",
            ErrorKind::Usage => "usage",
            ErrorKind::Salvage => "salvage",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parse a wire label (unknown labels degrade to `Internal` so a
    /// newer server never crashes an older client).
    pub fn from_label(s: &str) -> Self {
        match s {
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "decode" => ErrorKind::Decode,
            "limit" => ErrorKind::Limit,
            "usage" => ErrorKind::Usage,
            "salvage" => ErrorKind::Salvage,
            _ => ErrorKind::Internal,
        }
    }
}

/// One request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The requested operation.
    pub op: Op,
    /// Milliseconds the client allows for this request; `0` = no
    /// deadline (the server may impose its own default).
    pub deadline_ms: u32,
    /// Pipeline description for `pack` (ignored by the other ops).
    pub pipeline: String,
    /// Raw bytes (`pack`) or archive bytes (`unpack`/`salvage`/`stat`).
    pub payload: Vec<u8>,
}

/// One response frame: the exactly-one termination of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The operation succeeded; the body is its result bytes.
    Ok(Vec<u8>),
    /// The operation terminated with a structured error.
    Err {
        /// Error category (stable wire labels).
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// The server refused the work under load; retry after the hint.
    Shed {
        /// Client backoff hint in milliseconds.
        retry_after_ms: u32,
    },
}

/// Why a request frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed cleanly before sending any frame byte.
    CleanClose,
    /// A declared length exceeds the caller's limit; the frame was not
    /// consumed, so the only safe continuation is an error response and
    /// a connection close.
    OverLimit {
        /// The length the frame declared.
        declared: u64,
        /// The limit it exceeded.
        limit: u64,
    },
    /// The frame is structurally invalid (unknown op, bogus lengths).
    Malformed(&'static str),
    /// Transport failure (reset, torn read, EOF mid-frame).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::CleanClose => write!(f, "connection closed"),
            FrameError::OverLimit { declared, limit } => {
                write!(
                    f,
                    "frame declares {declared} bytes, above the {limit}-byte limit"
                )
            }
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Serialize and send one request frame.
pub fn write_request(w: &mut impl Write, req: &Request, tag: u64) -> io::Result<()> {
    let pipeline = req.pipeline.as_bytes();
    if pipeline.len() > u16::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "pipeline description exceeds u16 length prefix",
        ));
    }
    if req.payload.len() > MAX_FRAME_BYTES as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "payload exceeds wire-format frame cap",
        ));
    }
    let mut frame = Vec::with_capacity(11 + pipeline.len() + req.payload.len());
    frame.push(req.op.code());
    frame.extend_from_slice(&req.deadline_ms.to_le_bytes());
    frame.extend_from_slice(&(pipeline.len() as u16).to_le_bytes());
    frame.extend_from_slice(&(req.payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(pipeline);
    frame.extend_from_slice(&req.payload);
    write_all(w, &frame, tag)
}

/// Read one request frame, enforcing `max_payload` on the declared
/// payload length before any payload byte is read.
pub fn read_request(r: &mut impl Read, max_payload: u64, tag: u64) -> Result<Request, FrameError> {
    // The first byte distinguishes "peer hung up between requests"
    // (clean close) from "peer died mid-frame" (transport error).
    let mut first = [0u8; 1];
    match read_full(r, &mut first, tag) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::CleanClose),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let op = Op::from_code(first[0]).ok_or(FrameError::Malformed("unknown op code"))?;
    let mut head = [0u8; 10];
    read_full(r, &mut head, tag)?;
    let deadline_ms = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
    let pipeline_len = u16::from_le_bytes([head[4], head[5]]) as usize;
    let payload_len = u32::from_le_bytes([head[6], head[7], head[8], head[9]]);
    if payload_len > MAX_FRAME_BYTES {
        return Err(FrameError::Malformed("payload length above frame cap"));
    }
    if u64::from(payload_len) > max_payload {
        return Err(FrameError::OverLimit {
            declared: u64::from(payload_len),
            limit: max_payload,
        });
    }
    let mut pipeline = vec![0u8; pipeline_len];
    read_full(r, &mut pipeline, tag)?;
    let pipeline =
        String::from_utf8(pipeline).map_err(|_| FrameError::Malformed("pipeline is not utf-8"))?;
    let mut payload = vec![0u8; payload_len as usize];
    read_full(r, &mut payload, tag)?;
    Ok(Request {
        op,
        deadline_ms,
        pipeline,
        payload,
    })
}

/// Serialize and send one response frame.
pub fn write_response(w: &mut impl Write, resp: &Response, tag: u64) -> io::Result<()> {
    let mut frame = Vec::new();
    match resp {
        Response::Ok(body) => {
            if body.len() > MAX_FRAME_BYTES as usize {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "response body exceeds wire-format frame cap",
                ));
            }
            frame.push(0);
            frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
            frame.extend_from_slice(body);
        }
        Response::Err { kind, message } => {
            let kind = kind.label().as_bytes();
            let msg = message.as_bytes();
            let msg = &msg[..msg.len().min(MAX_FRAME_BYTES as usize)];
            frame.push(1);
            frame.extend_from_slice(&(kind.len() as u16).to_le_bytes());
            frame.extend_from_slice(kind);
            frame.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            frame.extend_from_slice(msg);
        }
        Response::Shed { retry_after_ms } => {
            frame.push(2);
            frame.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
    }
    write_all(w, &frame, tag)
}

/// Read one response frame. `max_body` bounds the ok-body and error
/// message allocations against a hostile or corrupted server.
pub fn read_response(r: &mut impl Read, max_body: u64, tag: u64) -> Result<Response, FrameError> {
    let mut status = [0u8; 1];
    read_full(r, &mut status, tag)?;
    match status[0] {
        0 => {
            let mut len = [0u8; 4];
            read_full(r, &mut len, tag)?;
            let len = u32::from_le_bytes(len);
            if len > MAX_FRAME_BYTES || u64::from(len) > max_body {
                return Err(FrameError::OverLimit {
                    declared: u64::from(len),
                    limit: max_body.min(u64::from(MAX_FRAME_BYTES)),
                });
            }
            let mut body = vec![0u8; len as usize];
            read_full(r, &mut body, tag)?;
            Ok(Response::Ok(body))
        }
        1 => {
            let mut klen = [0u8; 2];
            read_full(r, &mut klen, tag)?;
            let mut kind = vec![0u8; u16::from_le_bytes(klen) as usize];
            read_full(r, &mut kind, tag)?;
            let kind = std::str::from_utf8(&kind)
                .map(ErrorKind::from_label)
                .map_err(|_| FrameError::Malformed("error kind is not utf-8"))?;
            let mut mlen = [0u8; 4];
            read_full(r, &mut mlen, tag)?;
            let mlen = u32::from_le_bytes(mlen);
            if mlen > MAX_FRAME_BYTES || u64::from(mlen) > max_body {
                return Err(FrameError::Malformed("error message above body cap"));
            }
            let mut msg = vec![0u8; mlen as usize];
            read_full(r, &mut msg, tag)?;
            let message = String::from_utf8_lossy(&msg).into_owned();
            Ok(Response::Err { kind, message })
        }
        2 => {
            let mut ra = [0u8; 4];
            read_full(r, &mut ra, tag)?;
            Ok(Response::Shed {
                retry_after_ms: u32::from_le_bytes(ra),
            })
        }
        _ => Err(FrameError::Malformed("unknown response status")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: &Request) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, req, 1).unwrap();
        read_request(&mut Cursor::new(wire), u64::MAX, 1).unwrap()
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut wire = Vec::new();
        write_response(&mut wire, resp, 2).unwrap();
        read_response(&mut Cursor::new(wire), u64::MAX, 2).unwrap()
    }

    #[test]
    fn request_frames_roundtrip() {
        for req in [
            Request {
                op: Op::Pack,
                deadline_ms: 250,
                pipeline: "DIFF_1 RZE_1".into(),
                payload: (0..100_000u32).map(|i| (i % 253) as u8).collect(),
            },
            Request {
                op: Op::Stat,
                deadline_ms: 0,
                pipeline: String::new(),
                payload: Vec::new(),
            },
            Request {
                op: Op::Debug,
                deadline_ms: 100,
                pipeline: String::new(),
                payload: Vec::new(),
            },
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn response_frames_roundtrip() {
        for resp in [
            Response::Ok(vec![7u8; 4096]),
            Response::Err {
                kind: ErrorKind::DeadlineExceeded,
                message: "deadline 250ms exceeded in stage 2".into(),
            },
            Response::Err {
                kind: ErrorKind::Salvage,
                message: "3 of 40 chunks lost".into(),
            },
            Response::Shed { retry_after_ms: 40 },
        ] {
            assert_eq!(roundtrip_response(&resp), resp);
        }
    }

    #[test]
    fn error_kind_labels_are_stable_and_parse_back() {
        for kind in [
            ErrorKind::DeadlineExceeded,
            ErrorKind::Decode,
            ErrorKind::Limit,
            ErrorKind::Usage,
            ErrorKind::Salvage,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::from_label(kind.label()), kind);
        }
        assert_eq!(ErrorKind::DeadlineExceeded.label(), "deadline_exceeded");
        assert_eq!(
            ErrorKind::from_label("from-the-future"),
            ErrorKind::Internal
        );
    }

    #[test]
    fn over_limit_requests_are_refused_before_allocation() {
        let req = Request {
            op: Op::Pack,
            deadline_ms: 0,
            pipeline: "DIFF_1".into(),
            payload: vec![0u8; 10_000],
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req, 3).unwrap();
        let err = read_request(&mut Cursor::new(wire), 1_000, 3).unwrap_err();
        match err {
            FrameError::OverLimit { declared, limit } => {
                assert_eq!(declared, 10_000);
                assert_eq!(limit, 1_000);
            }
            other => panic!("expected OverLimit, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_and_torn_frames_are_distinguished() {
        // Zero bytes: the peer hung up between requests.
        let err = read_request(&mut Cursor::new(Vec::new()), u64::MAX, 4).unwrap_err();
        assert!(matches!(err, FrameError::CleanClose));

        // A frame cut off mid-header: a torn transfer, not a clean close.
        let req = Request {
            op: Op::Unpack,
            deadline_ms: 9,
            pipeline: String::new(),
            payload: vec![1, 2, 3],
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req, 4).unwrap();
        wire.truncate(6);
        let err = read_request(&mut Cursor::new(wire), u64::MAX, 4).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "got {err:?}");
    }

    #[test]
    fn unknown_op_code_is_malformed() {
        let err = read_request(&mut Cursor::new(vec![99u8; 16]), u64::MAX, 5).unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)));
    }
}
