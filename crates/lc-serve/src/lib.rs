//! lc-serve: a deadline-governed, load-shedding compression service.
//!
//! This crate turns the batch LC toolkit into a long-running service:
//! a length-prefixed TCP protocol ([`proto`]) exposing `pack`, `unpack`,
//! `salvage`, and `stat`, executed on the shared [`lc_parallel::Pool`]
//! under per-request deadlines ([`exec`]), admission-controlled by a
//! request-memory governor ([`arena`]), with a bounded accept queue,
//! explicit shed-vs-queue policy, and a graceful-drain state machine
//! ([`server`]). A shed-aware retrying client ([`client`]) and a seeded
//! open-loop load generator ([`loadgen`]) complete the loop; the chaos
//! layer's socket fault sites ([`lc_chaos::net`]) inject resets and torn
//! transfers into live traffic so the request-termination contract —
//! every accepted request ends in exactly one of {response, structured
//! error, shed} — is tested under fire, not just on the happy path.
//!
//! Zero new dependencies: sockets are `std::net`, time is `std::time`,
//! randomness is the chaos layer's splitmix64.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod client;
pub mod exec;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use arena::{MemGovernor, MemLease};
pub use client::{Client, ClientError};
pub use exec::{execute, request_token, ExecContext};
pub use proto::{ErrorKind, Op, Request, Response};
pub use server::{ServeConfig, ServeSummary, Server};
