//! Open-loop load generation against a running server.
//!
//! Arrivals are a seeded Poisson process: inter-arrival gaps are drawn
//! from an exponential distribution whose randomness comes from
//! [`lc_chaos::splitmix64`], so a `(seed, rate, duration)` triple
//! replays the same arrival schedule every run. *Open-loop* means the
//! schedule does not slow down when the server does — requests queue at
//! the client and latency grows, which is exactly the signal the
//! percentiles are meant to capture.
//!
//! Request payloads come from the lc-data SP profiles at three scales,
//! so the mix covers small/medium/large requests; the op mix is mostly
//! `pack` with a minority of `unpack`/`stat`/`salvage` against
//! pre-encoded archives.
//!
//! Latencies are recorded into the lc-telemetry histogram
//! `loadgen.latency_us` (measured from scheduled arrival, so client-side
//! queueing counts, as it should in an open-loop measurement) and
//! reported as conservative upper-bound percentiles.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use lc_chaos::splitmix64;
use lc_parallel::Pool;

use crate::client::Client;
use crate::proto::{ErrorKind, Op, Request, Response};

/// One load-generation run's shape.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server to drive.
    pub addr: SocketAddr,
    /// How long to keep generating arrivals.
    pub duration: Duration,
    /// Mean arrival rate, requests per second.
    pub rate_rps: f64,
    /// Seed for the arrival schedule and request mix.
    pub seed: u64,
    /// Client worker threads draining the arrival queue.
    pub workers: usize,
    /// Pipeline used for `pack` requests and the pre-encoded archives.
    pub pipeline: String,
    /// Per-request deadline handed to the server (0 = none).
    pub deadline_ms: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            duration: Duration::from_secs(5),
            rate_rps: 200.0,
            seed: 1,
            workers: 8,
            pipeline: "DIFF_4 RZE_4".to_string(),
            deadline_ms: 2_000,
        }
    }
}

/// What one run observed. `sent == ok + errs + failed` always holds by
/// construction at the client; the CI smoke asserts it anyway as the
/// client half of the zero-silent-drops contract.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Requests the arrival schedule dispatched.
    pub sent: u64,
    /// Ok responses.
    pub ok: u64,
    /// Structured error responses (all kinds).
    pub errs: u64,
    /// Of `errs`, how many were `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Requests that exhausted retries (persistent shed or transport).
    pub failed: u64,
    /// Wall-clock for the whole run, milliseconds.
    pub wall_ms: u64,
    /// Achieved throughput over the wall clock.
    pub reqs_per_sec: f64,
    /// Latency percentiles, microseconds (conservative upper bounds).
    pub p50_us: u64,
    /// 90th percentile latency.
    pub p90_us: u64,
    /// 99th percentile latency.
    pub p99_us: u64,
}

impl LoadgenReport {
    /// Client-side accounting identity.
    pub fn accounted(&self) -> bool {
        self.sent == self.ok + self.errs + self.failed
    }

    /// Render for `BENCH_serve.json`.
    pub fn to_json(&self) -> lc_json::Value {
        lc_json::Value::object([
            ("sent", lc_json::Value::from(self.sent)),
            ("ok", lc_json::Value::from(self.ok)),
            ("errs", lc_json::Value::from(self.errs)),
            (
                "deadline_exceeded",
                lc_json::Value::from(self.deadline_exceeded),
            ),
            ("failed", lc_json::Value::from(self.failed)),
            ("wall_ms", lc_json::Value::from(self.wall_ms)),
            ("reqs_per_sec", lc_json::Value::from(self.reqs_per_sec)),
            ("p50_us", lc_json::Value::from(self.p50_us)),
            ("p90_us", lc_json::Value::from(self.p90_us)),
            ("p99_us", lc_json::Value::from(self.p99_us)),
            ("accounted", lc_json::Value::from(self.accounted())),
        ])
    }
}

/// The request corpus: payloads at three sizes plus pre-encoded
/// archives for the decode-side ops.
struct Corpus {
    raw: Vec<Vec<u8>>,
    archives: Vec<Vec<u8>>,
}

impl Corpus {
    fn build(pipeline_desc: &str) -> Corpus {
        // Three SP profiles at three scales: ~64 kB, ~130 kB, ~520 kB.
        let picks = [("msg_bt", 8192u32), ("num_brain", 1024), ("obs_error", 256)];
        let raw: Vec<Vec<u8>> = picks
            .iter()
            .map(|(name, denom)| {
                let file = lc_data::file_by_name(name).unwrap_or(&lc_data::SP_FILES[0]);
                lc_data::generate(file, lc_data::Scale::denominator(*denom))
            })
            .collect();
        let pool = Pool::new(2);
        let pipeline = lc_core::Pipeline::parse(pipeline_desc, lc_components::lookup)
            .unwrap_or_else(|e| {
                // invariant: callers pass pipelines validated by the CLI
                panic!("loadgen pipeline {pipeline_desc:?} does not parse: {e}")
            });
        let archives = raw
            .iter()
            .map(|data| lc_core::archive::encode_with_stats(&pipeline, data, &pool).archive)
            .collect();
        Corpus { raw, archives }
    }

    /// Deterministic request for arrival `seq`.
    fn request(&self, seed: u64, seq: u64, pipeline: &str, deadline_ms: u32) -> Request {
        let draw = splitmix64(seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let size_pick = (draw >> 8) as usize % self.raw.len();
        let (op, payload) = match draw % 100 {
            0..=69 => (Op::Pack, self.raw[size_pick].clone()),
            70..=89 => (Op::Unpack, self.archives[size_pick].clone()),
            90..=96 => (Op::Stat, self.archives[size_pick].clone()),
            _ => (Op::Salvage, self.archives[size_pick].clone()),
        };
        Request {
            op,
            deadline_ms,
            pipeline: if op == Op::Pack {
                pipeline.to_string()
            } else {
                String::new()
            },
            payload,
        }
    }
}

struct Job {
    seq: u64,
    scheduled: Instant,
}

struct JobQueue {
    state: Mutex<(VecDeque<Job>, bool)>,
    cond: Condvar,
}

impl JobQueue {
    fn push(&self, job: Job) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.0.push_back(job);
        drop(st);
        self.cond.notify_one();
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).1 = true;
        self.cond.notify_all();
    }

    /// `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = st.0.pop_front() {
                return Some(job);
            }
            if st.1 {
                return None;
            }
            st = self
                .cond
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }
}

/// Uniform in `[0, 1)` from one splitmix64 draw.
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

/// Drive the server at `cfg.addr` and report what happened.
///
/// Enables telemetry for the calling process (the latency histogram
/// needs it).
pub fn run(cfg: &LoadgenConfig) -> LoadgenReport {
    lc_telemetry::enable();
    let corpus = Corpus::build(&cfg.pipeline);
    let client = Client::new(cfg.addr);
    let queue = JobQueue {
        state: Mutex::new((VecDeque::new(), false)),
        cond: Condvar::new(),
    };
    let ok = AtomicU64::new(0);
    let errs = AtomicU64::new(0);
    let deadline_exceeded = AtomicU64::new(0);
    let failed = AtomicU64::new(0);

    let start = Instant::now();
    let mut sent: u64 = 0;
    std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            scope.spawn(|| {
                while let Some(job) = queue.pop() {
                    let req = corpus.request(cfg.seed, job.seq, &cfg.pipeline, cfg.deadline_ms);
                    let tag = cfg.seed ^ job.seq.wrapping_mul(0xA5A5);
                    match client.request_with_retry(&req, tag) {
                        Ok(Response::Ok(_)) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Response::Err { kind, .. }) => {
                            errs.fetch_add(1, Ordering::Relaxed);
                            if kind == ErrorKind::DeadlineExceeded {
                                deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // request_with_retry never returns Shed (it
                        // retries them), but account it if it ever did.
                        Ok(Response::Shed { .. }) | Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    lc_telemetry::histogram("loadgen.latency_us")
                        .record(job.scheduled.elapsed().as_micros() as u64);
                }
            });
        }

        // The arrival schedule: seeded Poisson, open loop.
        let mut next = start;
        while start.elapsed() < cfg.duration {
            let gap_s = -(1.0 - unit(splitmix64(cfg.seed.wrapping_add(sent)))).ln()
                / cfg.rate_rps.max(1e-6);
            next += Duration::from_secs_f64(gap_s.min(1.0));
            let now = Instant::now();
            if next > now {
                std::thread::sleep(next - now);
            }
            queue.push(Job {
                seq: sent,
                scheduled: Instant::now(),
            });
            sent += 1;
        }
        queue.close();
    });

    let wall = start.elapsed();
    let hist = lc_telemetry::histogram("loadgen.latency_us");
    LoadgenReport {
        sent,
        ok: ok.load(Ordering::Relaxed),
        errs: errs.load(Ordering::Relaxed),
        deadline_exceeded: deadline_exceeded.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        wall_ms: wall.as_millis() as u64,
        reqs_per_sec: sent as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: hist.percentile(0.50),
        p90_us: hist.percentile(0.90),
        p99_us: hist.percentile(0.99),
    }
}

/// Shape of one capacity sweep: step the offered rate geometrically
/// until the server starts shedding past the tolerance, then report the
/// knee (the highest offered rate whose shed rate stayed under it —
/// i.e. the server's usable capacity under this request mix).
#[derive(Debug, Clone)]
pub struct RateSweepConfig {
    /// Everything but `rate_rps` and `duration` is taken from here.
    pub base: LoadgenConfig,
    /// First offered rate, requests per second.
    pub rate_start: f64,
    /// Stop stepping past this offered rate even if nothing sheds.
    pub rate_max: f64,
    /// Multiplicative step between offered rates (> 1).
    pub rate_factor: f64,
    /// Shed tolerance: a step whose observed shed rate (retried sheds
    /// plus exhausted requests, over sent) exceeds this ends the sweep.
    pub shed_threshold: f64,
    /// How long each step drives the server.
    pub step_duration: Duration,
}

impl Default for RateSweepConfig {
    fn default() -> Self {
        Self {
            base: LoadgenConfig::default(),
            rate_start: 50.0,
            rate_max: 3200.0,
            rate_factor: 2.0,
            shed_threshold: 0.05,
            step_duration: Duration::from_secs(2),
        }
    }
}

/// One sweep step's observation.
#[derive(Debug, Clone)]
pub struct RateStep {
    /// Offered (scheduled) arrival rate.
    pub offered_rps: f64,
    /// Rate actually dispatched over the step's wall clock.
    pub achieved_rps: f64,
    /// Ok responses over the step's wall clock.
    pub goodput_rps: f64,
    /// Retried sheds + exhausted requests, over sent.
    pub shed_rate: f64,
    /// 99th-percentile latency for this step, microseconds.
    pub p99_us: u64,
}

impl RateStep {
    fn to_json(&self) -> lc_json::Value {
        lc_json::Value::object([
            ("offered_rps", lc_json::Value::from(self.offered_rps)),
            ("achieved_rps", lc_json::Value::from(self.achieved_rps)),
            ("goodput_rps", lc_json::Value::from(self.goodput_rps)),
            ("shed_rate", lc_json::Value::from(self.shed_rate)),
            ("p99_us", lc_json::Value::from(self.p99_us)),
        ])
    }
}

/// The sweep's outcome: every step plus the knee.
#[derive(Debug, Clone)]
pub struct RateSweepReport {
    /// Steps in offered-rate order (the last one may be over threshold).
    pub steps: Vec<RateStep>,
    /// Offered rate at the knee: the best goodput whose shed rate
    /// stayed within tolerance. Zero when every step shed.
    pub knee_offered_rps: f64,
    /// Goodput at the knee.
    pub knee_goodput_rps: f64,
    /// The shed tolerance the knee was judged against.
    pub shed_threshold: f64,
}

impl RateSweepReport {
    /// Render for the `rate_sweep` section of `BENCH_serve.json`.
    pub fn to_json(&self) -> lc_json::Value {
        lc_json::Value::object([
            (
                "steps",
                lc_json::Value::array(self.steps.iter().map(|s| s.to_json())),
            ),
            (
                "knee_offered_rps",
                lc_json::Value::from(self.knee_offered_rps),
            ),
            (
                "knee_goodput_rps",
                lc_json::Value::from(self.knee_goodput_rps),
            ),
            ("shed_threshold", lc_json::Value::from(self.shed_threshold)),
        ])
    }
}

/// Step the offered load until the shed tolerance is exceeded (or
/// `rate_max` is reached) and locate the knee.
///
/// Sheds the server absorbed by retrying are invisible in the
/// [`LoadgenReport`] (the client retries them to completion), so each
/// step diffs the `client.shed_observed` counter around its run.
pub fn rate_sweep(cfg: &RateSweepConfig) -> RateSweepReport {
    let shed_counter = lc_telemetry::counter("client.shed_observed");
    let mut steps = Vec::new();
    let mut knee: Option<(f64, f64)> = None;
    let mut rate = cfg.rate_start.max(1.0);
    loop {
        let step_cfg = LoadgenConfig {
            rate_rps: rate,
            duration: cfg.step_duration,
            ..cfg.base.clone()
        };
        let sheds_before = shed_counter.get();
        let report = run(&step_cfg);
        let sheds_observed = shed_counter.get().saturating_sub(sheds_before);
        let wall_s = (report.wall_ms as f64 / 1e3).max(1e-9);
        let step = RateStep {
            offered_rps: rate,
            achieved_rps: report.reqs_per_sec,
            goodput_rps: report.ok as f64 / wall_s,
            shed_rate: (sheds_observed + report.failed) as f64 / (report.sent.max(1) as f64),
            // Per-step p99 via the counter-free route is not available:
            // the latency histogram is cumulative across steps, so the
            // honest per-step figure is the cumulative p99 so far.
            p99_us: report.p99_us,
        };
        let over = step.shed_rate > cfg.shed_threshold;
        if !over {
            let better = knee.is_none_or(|(_, g)| step.goodput_rps > g);
            if better {
                knee = Some((step.offered_rps, step.goodput_rps));
            }
        }
        steps.push(step);
        if over || rate >= cfg.rate_max {
            break;
        }
        rate = (rate * cfg.rate_factor.max(1.01)).min(cfg.rate_max);
    }
    let (knee_offered_rps, knee_goodput_rps) = knee.unwrap_or((0.0, 0.0));
    RateSweepReport {
        steps,
        knee_offered_rps,
        knee_goodput_rps,
        shed_threshold: cfg.shed_threshold,
    }
}
