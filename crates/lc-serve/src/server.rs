//! The deadline-governed, load-shedding compression server.
//!
//! # Lifecycle (the drain state machine)
//!
//! ```text
//!           bind()            drain token cancelled
//!            │                (SIGINT/SIGTERM or programmatic)
//!            ▼                         │
//!   ┌─────────────────┐               ▼
//!   │     RUNNING     │──────▶ ┌──────────────┐     drain deadline or
//!   │ accept + serve  │        │   DRAINING   │────▶ second signal
//!   └─────────────────┘        │ no accepts;  │     ┌─────────────┐
//!                              │ finish or    │     │ HARD ABORT  │
//!                              │ deadline-out │     │ cancel all  │
//!                              │ in-flight    │     │ request     │
//!                              └──────┬───────┘     │ tokens      │
//!                                     │             └──────┬──────┘
//!                                     ▼                    │
//!                              run() returns ◀─────────────┘
//!                              ServeSummary
//! ```
//!
//! Hard abort is still *structured*: in-flight requests observe their
//! (now cancelled) tokens at the next chunk boundary and terminate with
//! an `internal` error response — never a silent drop. The summary's
//! [`ServeSummary::hard_aborted`] flag is what maps to exit code 7.
//!
//! # The request-termination contract
//!
//! Every fully-read request frame increments `requests_in` and
//! terminates in exactly one of four ways, each incrementing exactly one
//! counter: an ok response, a structured error response, a shed
//! response, or a failed response write (client gone; the termination
//! still happened, the delivery did not). [`ServeSummary::accounted`]
//! checks the identity
//! `requests_in == responses_ok + responses_err + sheds +
//! response_write_failed`, and the chaos soak asserts it over 64 fault
//! plans.
//!
//! Connections refused at the front door because the accept queue is
//! full are shed *before* any request frame is read; they are accounted
//! separately as `sheds_accept` (the client still receives a shed frame
//! with a `retry_after` hint when the wire allows it).

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lc_parallel::{CancelToken, Pool};

use crate::arena::MemGovernor;
use crate::exec::{execute, request_token, ExecContext, SHED_RETRY_AFTER_MS};
use crate::proto::{self, ErrorKind, FrameError, Response};

/// How the server is sized and bounded. All limits are explicit; the
/// defaults suit the integration tests and the CI smoke job.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Connection-serving worker threads.
    pub worker_threads: usize,
    /// Stage-execution pool threads (shared by all requests).
    pub pool_threads: usize,
    /// Accepted connections waiting for a worker; beyond this, shed.
    pub queue_capacity: usize,
    /// Request-memory budget in bytes (`None` = ungoverned).
    pub mem_budget_bytes: Option<u64>,
    /// Largest request payload a frame may declare.
    pub max_payload_bytes: u64,
    /// Decompression-bomb guard for unpack/salvage.
    pub max_decoded_bytes: u64,
    /// How long DRAINING may last before escalating to hard abort.
    pub drain_deadline_ms: u64,
    /// Install [`lc_chaos::FaultPlan::serve`] with this seed for the
    /// server process (CI smoke / soak harness).
    pub chaos_seed: Option<u64>,
    /// Where to publish the flight-recorder black box when drain
    /// escalates to hard abort (`None` = no dump). The dump happens
    /// after every worker has exited, so its tail records the same
    /// events the summary accounts.
    pub flight_dump: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 4,
            pool_threads: 2,
            queue_capacity: 64,
            mem_budget_bytes: None,
            max_payload_bytes: 64 << 20,
            max_decoded_bytes: 256 << 20,
            drain_deadline_ms: 5_000,
            chaos_seed: None,
            flight_dump: None,
        }
    }
}

/// Terminal accounting for one server run. See the module docs for the
/// termination contract these counters encode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted from the listener.
    pub conns_accepted: u64,
    /// Connections shed at the front door (queue full).
    pub sheds_accept: u64,
    /// Request frames fully read.
    pub requests_in: u64,
    /// Requests that terminated with an ok response.
    pub responses_ok: u64,
    /// Requests that terminated with a structured error response.
    pub responses_err: u64,
    /// Requests shed after being read (memory admission refused).
    pub sheds: u64,
    /// Requests whose termination could not be delivered (client gone).
    pub response_write_failed: u64,
    /// Connection-level transport failures before a frame was fully
    /// read (torn reads, resets). No request was accepted on these.
    pub conn_transport_errors: u64,
    /// Whether drain escalated to hard abort.
    pub hard_aborted: bool,
}

impl ServeSummary {
    /// The exactly-once identity: every accepted request terminated in
    /// exactly one of the four contract outcomes.
    pub fn accounted(&self) -> bool {
        self.requests_in
            == self.responses_ok + self.responses_err + self.sheds + self.response_write_failed
    }

    /// Render as a JSON object for logs and the CI smoke assertion.
    pub fn to_json(&self) -> lc_json::Value {
        lc_json::Value::object([
            ("conns_accepted", lc_json::Value::from(self.conns_accepted)),
            ("sheds_accept", lc_json::Value::from(self.sheds_accept)),
            ("requests_in", lc_json::Value::from(self.requests_in)),
            ("responses_ok", lc_json::Value::from(self.responses_ok)),
            ("responses_err", lc_json::Value::from(self.responses_err)),
            ("sheds", lc_json::Value::from(self.sheds)),
            (
                "response_write_failed",
                lc_json::Value::from(self.response_write_failed),
            ),
            (
                "conn_transport_errors",
                lc_json::Value::from(self.conn_transport_errors),
            ),
            ("hard_aborted", lc_json::Value::from(self.hard_aborted)),
            ("accounted", lc_json::Value::from(self.accounted())),
        ])
    }
}

#[derive(Default)]
struct Counters {
    conns_accepted: AtomicU64,
    sheds_accept: AtomicU64,
    requests_in: AtomicU64,
    responses_ok: AtomicU64,
    responses_err: AtomicU64,
    sheds: AtomicU64,
    response_write_failed: AtomicU64,
    conn_transport_errors: AtomicU64,
    hard_aborted: AtomicBool,
}

impl Counters {
    fn summary(&self) -> ServeSummary {
        ServeSummary {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            sheds_accept: self.sheds_accept.load(Ordering::Relaxed),
            requests_in: self.requests_in.load(Ordering::Relaxed),
            responses_ok: self.responses_ok.load(Ordering::Relaxed),
            responses_err: self.responses_err.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            response_write_failed: self.response_write_failed.load(Ordering::Relaxed),
            conn_transport_errors: self.conn_transport_errors.load(Ordering::Relaxed),
            hard_aborted: self.hard_aborted.load(Ordering::Relaxed),
        }
    }
}

/// Process-global request-id source. Ids start at 1 so `0` can keep
/// meaning "no request scope" in lc-telemetry; they are unique across
/// every server instance in the process, which keeps traces from
/// in-process test servers unambiguous.
static NEXT_REQ: AtomicU64 = AtomicU64::new(1);

/// One accepted connection waiting for a worker.
struct QueuedConn {
    stream: TcpStream,
    enqueued: Instant,
    tag: u64,
}

struct QueueState {
    conns: std::collections::VecDeque<QueuedConn>,
    closed: bool,
}

/// The bounded accept queue: the explicit shed-vs-queue boundary.
struct AcceptQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
}

enum Pop {
    Conn(QueuedConn),
    Empty,
    Closed,
}

impl AcceptQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                conns: std::collections::VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Queue the connection, or hand it back for shedding when full or
    /// already draining.
    fn try_push(&self, conn: QueuedConn) -> Result<(), QueuedConn> {
        let mut st = self.lock();
        if st.closed || st.conns.len() >= self.capacity {
            return Err(conn);
        }
        st.conns.push_back(conn);
        lc_telemetry::gauge("serve.queue_depth").set(st.conns.len() as u64);
        drop(st);
        self.cond.notify_one();
        Ok(())
    }

    /// Stop admitting; wake every worker so it can drain and exit.
    fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }

    fn pop(&self, wait: Duration) -> Pop {
        let mut st = self.lock();
        if st.conns.is_empty() && !st.closed {
            let (g, _timeout) = self
                .cond
                .wait_timeout(st, wait)
                .unwrap_or_else(|p| p.into_inner());
            st = g;
        }
        match st.conns.pop_front() {
            Some(conn) => {
                lc_telemetry::gauge("serve.queue_depth").set(st.conns.len() as u64);
                Pop::Conn(conn)
            }
            None if st.closed => Pop::Closed,
            None => Pop::Empty,
        }
    }
}

/// A bound server, not yet running. Separating bind from run lets
/// callers learn the ephemeral port and clone control tokens first.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    drain: CancelToken,
    hard: CancelToken,
    mem: Arc<MemGovernor>,
}

impl Server {
    /// Bind the listen socket and prepare control tokens.
    ///
    /// `drain` is the shutdown trigger: cancel it (or construct it with
    /// [`CancelToken::watching_signals`]) to move the server from
    /// RUNNING to DRAINING.
    pub fn bind(cfg: ServeConfig, drain: CancelToken) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let mem = MemGovernor::new(cfg.mem_budget_bytes);
        Ok(Server {
            listener,
            cfg,
            drain,
            hard: CancelToken::new(),
            mem,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared request-memory governor (tests watch its residency).
    pub fn governor(&self) -> Arc<MemGovernor> {
        Arc::clone(&self.mem)
    }

    /// Serve until drained. Blocks the calling thread; returns the
    /// terminal accounting once every worker has exited.
    pub fn run(self) -> ServeSummary {
        let _chaos = self
            .cfg
            .chaos_seed
            .map(|seed| lc_chaos::install(lc_chaos::FaultPlan::serve(seed)));
        let exec = ExecContext {
            pool: Pool::new(self.cfg.pool_threads),
            max_decoded_bytes: self.cfg.max_decoded_bytes,
            mem: Arc::clone(&self.mem),
        };
        let counters = Counters::default();
        let queue = AcceptQueue::new(self.cfg.queue_capacity);
        let workers_done = AtomicUsize::new(0);
        let signal_base = lc_parallel::signal_count();

        std::thread::scope(|scope| {
            for _ in 0..self.cfg.worker_threads.max(1) {
                scope.spawn(|| {
                    loop {
                        match queue.pop(Duration::from_millis(50)) {
                            Pop::Conn(qc) => {
                                let queue_us = qc.enqueued.elapsed().as_micros() as u64;
                                lc_telemetry::histogram("serve.time_in_queue_us").record(queue_us);
                                handle_conn(
                                    qc.stream,
                                    qc.tag,
                                    queue_us,
                                    &exec,
                                    &counters,
                                    &self.cfg,
                                    &self.drain,
                                    &self.hard,
                                );
                            }
                            Pop::Empty => {}
                            Pop::Closed => break,
                        }
                    }
                    workers_done.fetch_add(1, Ordering::Release);
                });
            }

            // RUNNING: the accept loop.
            let mut conn_seq: u64 = 0;
            while !self.drain.is_cancelled() {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        conn_seq += 1;
                        counters.conns_accepted.fetch_add(1, Ordering::Relaxed);
                        let qc = QueuedConn {
                            stream,
                            enqueued: Instant::now(),
                            // Distinct chaos tag per connection keeps
                            // fault draws independent across conns.
                            tag: 0x5E4E_0000_0000_0000u64.wrapping_add(conn_seq),
                        };
                        if let Err(refused) = queue.try_push(qc) {
                            counters.sheds_accept.fetch_add(1, Ordering::Relaxed);
                            lc_telemetry::counter("serve.shed_queue").add(1);
                            shed_connection(refused);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }

            // DRAINING: no new work; finish or deadline-out what's in.
            lc_telemetry::flight::note("serve.drain", &[]);
            queue.close();
            let drain_started = Instant::now();
            let drain_deadline = Duration::from_millis(self.cfg.drain_deadline_ms);
            let workers = self.cfg.worker_threads.max(1);
            while workers_done.load(Ordering::Acquire) < workers {
                let second_signal = lc_parallel::signal_count() >= signal_base + 2;
                if !self.hard.is_cancelled()
                    && (second_signal || drain_started.elapsed() >= drain_deadline)
                {
                    // HARD ABORT: cancel every request token; in-flight
                    // work terminates with structured errors at the
                    // next chunk boundary.
                    self.hard.cancel();
                    counters.hard_aborted.store(true, Ordering::Relaxed);
                    lc_telemetry::counter("serve.hard_abort").add(1);
                    lc_telemetry::flight::note(
                        "serve.hard_abort",
                        &[(
                            "drain_elapsed_ms",
                            drain_started.elapsed().as_millis() as u64,
                        )],
                    );
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let summary = counters.summary();
        // The summary's accounting, restated as the flight recorder's
        // final events: the black box's tail must agree with what the
        // drain summary reports (two args per note is the slot budget).
        lc_telemetry::flight::note(
            "serve.summary",
            &[
                ("requests_in", summary.requests_in),
                ("responses_ok", summary.responses_ok),
            ],
        );
        lc_telemetry::flight::note(
            "serve.summary",
            &[
                ("responses_err", summary.responses_err),
                ("sheds", summary.sheds),
            ],
        );
        lc_telemetry::flight::note(
            "serve.summary",
            &[
                ("response_write_failed", summary.response_write_failed),
                ("hard_aborted", u64::from(summary.hard_aborted)),
            ],
        );
        if summary.hard_aborted {
            if let Some(path) = &self.cfg.flight_dump {
                if let Err(e) = lc_telemetry::flight::dump_to(path) {
                    eprintln!(
                        "warning: flight recorder dump to {} failed: {e}",
                        path.display()
                    );
                }
            }
        }
        summary
    }
}

/// Shed a connection at the front door: best-effort shed frame, then
/// close. The write is bounded so a stalled client cannot wedge the
/// acceptor.
fn shed_connection(qc: QueuedConn) {
    let mut stream = qc.stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = proto::write_response(
        &mut stream,
        &Response::Shed {
            retry_after_ms: SHED_RETRY_AFTER_MS,
        },
        qc.tag,
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// How long an idle connection waits between shutdown checks.
const IDLE_POLL: Duration = Duration::from_millis(100);
/// Upper bound on any single blocking read/write once a frame started.
/// Bounds how long a dead client can wedge a worker past drain.
const FRAME_IO_TIMEOUT: Duration = Duration::from_secs(5);

fn io_timed_out(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serve one connection to completion: a sequence of request frames,
/// each answered by exactly one response frame.
#[allow(clippy::too_many_arguments)]
fn handle_conn(
    mut stream: TcpStream,
    conn_tag: u64,
    queue_us: u64,
    exec: &ExecContext,
    counters: &Counters,
    cfg: &ServeConfig,
    drain: &CancelToken,
    hard: &CancelToken,
) {
    if stream.set_nonblocking(false).is_err()
        || stream.set_write_timeout(Some(FRAME_IO_TIMEOUT)).is_err()
    {
        counters
            .conn_transport_errors
            .fetch_add(1, Ordering::Relaxed);
        return;
    }
    let mut req_seq: u64 = 0;
    loop {
        // Idle phase: wait for the next frame's first byte without
        // committing to a long blocking read, so shutdown is observed
        // within IDLE_POLL even on silent connections.
        if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
            counters
                .conn_transport_errors
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // clean close
            Ok(_) => {}
            Err(ref e) if io_timed_out(e) => {
                if drain.is_cancelled() || hard.is_cancelled() {
                    return; // no frame in flight; drain closes idle conns
                }
                continue;
            }
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                counters
                    .conn_transport_errors
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }

        // Frame phase: a request is on the wire; read it fully.
        if stream.set_read_timeout(Some(FRAME_IO_TIMEOUT)).is_err() {
            counters
                .conn_transport_errors
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        req_seq += 1;
        let tag = conn_tag.wrapping_add(req_seq.wrapping_mul(0x9E37));
        let req = match proto::read_request(&mut stream, cfg.max_payload_bytes, tag) {
            Ok(req) => req,
            Err(FrameError::CleanClose) => return,
            Err(FrameError::OverLimit { declared, limit }) => {
                // The head was read but the payload was refused before
                // allocation: terminate with a structured error, then
                // close (framing cannot resync past unread payload).
                counters.requests_in.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut stream,
                    &Response::Err {
                        kind: ErrorKind::Limit,
                        message: format!(
                            "request declares {declared} bytes, above the {limit}-byte limit"
                        ),
                    },
                    tag,
                    counters,
                );
                return;
            }
            Err(FrameError::Malformed(what)) => {
                counters.requests_in.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut stream,
                    &Response::Err {
                        kind: ErrorKind::Usage,
                        message: format!("malformed frame: {what}"),
                    },
                    tag,
                    counters,
                );
                return;
            }
            Err(FrameError::Io(_)) => {
                counters
                    .conn_transport_errors
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        };

        counters.requests_in.fetch_add(1, Ordering::Relaxed);
        lc_telemetry::counter("serve.requests").add(1);

        // Request scope: every span and flight record produced while
        // serving this request — pool workers included — carries this
        // id, so a trace export reconstructs one request's critical
        // path (queue wait, each stage, governor verdict, outcome).
        let req_id = NEXT_REQ.fetch_add(1, Ordering::Relaxed);
        let _req_scope = lc_telemetry::request_scope(req_id);
        let mut req_span = lc_telemetry::span_in!(
            "serve",
            "request",
            op = req.op.label(),
            bytes = req.payload.len(),
            deadline_ms = req.deadline_ms,
            // Queue wait belongs to the frame that was waiting when the
            // worker picked the connection up; later frames on the same
            // connection never sat in the accept queue.
            queue_us = if req_seq == 1 { queue_us } else { 0 },
        );

        let token = request_token(hard, req.deadline_ms, Instant::now());
        let resp = execute(&req, &lc_components::lookup, exec, &token);
        let outcome = match &resp {
            Response::Ok(_) => "ok",
            Response::Err { kind, .. } => kind.label(),
            Response::Shed { .. } => "shed",
        };
        req_span.arg("outcome", outcome);
        let delivered = respond(&mut stream, &resp, tag, counters);
        req_span.arg("delivered", delivered);
        drop(req_span);
        if !delivered {
            return;
        }
        if drain.is_cancelled() || hard.is_cancelled() {
            return; // response delivered; close before the next frame
        }
    }
}

/// Write the request's one termination and bump exactly one counter.
/// Returns whether the connection is still usable.
fn respond(stream: &mut TcpStream, resp: &Response, tag: u64, counters: &Counters) -> bool {
    match proto::write_response(stream, resp, tag).and_then(|()| stream.flush()) {
        Ok(()) => {
            let (counter, metric) = match resp {
                Response::Ok(_) => (&counters.responses_ok, "serve.resp_ok"),
                Response::Err { .. } => (&counters.responses_err, "serve.resp_err"),
                Response::Shed { .. } => (&counters.sheds, "serve.resp_shed"),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            lc_telemetry::counter(metric).add(1);
            true
        }
        Err(_) => {
            counters
                .response_write_failed
                .fetch_add(1, Ordering::Relaxed);
            lc_telemetry::counter("serve.resp_write_failed").add(1);
            false
        }
    }
}
