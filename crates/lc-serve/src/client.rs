//! A minimal blocking client: one connection per request, with
//! shed-aware bounded retries.
//!
//! Retry policy mirrors the durable-I/O layer's [`lc_chaos::fs`]
//! schedule: at most [`lc_chaos::fs::MAX_ATTEMPTS`] attempts, sleeping
//! the server's `retry_after` hint (for sheds) plus the deterministic
//! [`lc_chaos::fs::backoff_us`] jitter between attempts, so a fleet of
//! shed clients spreads out instead of thundering back in lockstep.
//! Transport failures (resets injected by a chaos plan, torn frames)
//! retry on the same schedule: every exposed operation is idempotent,
//! so re-sending after an ambiguous failure is safe.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use lc_chaos::fs::{backoff_us, MAX_ATTEMPTS};

use crate::proto::{self, FrameError, Request, Response};

/// Why a request ultimately failed at the client.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to the server.
    Connect(io::Error),
    /// The exchange failed at the framing/transport layer.
    Frame(FrameError),
    /// Every attempt was shed or failed; the last cause is attached.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// Human-readable final cause.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Frame(e) => write!(f, "exchange failed: {e}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Connection/read bounds for one client.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    /// Largest response body this client will accept.
    pub max_body: u64,
    /// Per-exchange socket timeout.
    pub io_timeout: Duration,
}

impl Client {
    /// A client for `addr` with generous default bounds.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            max_body: 1 << 30,
            io_timeout: Duration::from_secs(10),
        }
    }

    /// One connect → request → response exchange, no retries.
    pub fn request_once(&self, req: &Request, tag: u64) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect(self.addr).map_err(ClientError::Connect)?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)))
            .map_err(ClientError::Connect)?;
        proto::write_request(&mut stream, req, tag)
            .map_err(|e| ClientError::Frame(FrameError::Io(e)))?;
        proto::read_response(&mut stream, self.max_body, tag).map_err(ClientError::Frame)
    }

    /// Exchange with bounded retries on shed responses and transport
    /// failures. Structured error responses are *not* retried — they
    /// are the request's termination, and the caller gets them as
    /// `Ok(Response::Err { .. })`.
    pub fn request_with_retry(&self, req: &Request, tag: u64) -> Result<Response, ClientError> {
        let mut last = String::new();
        for attempt in 0..MAX_ATTEMPTS {
            let retry_after_ms = match self.request_once(req, tag.wrapping_add(attempt.into())) {
                Ok(Response::Shed { retry_after_ms }) => {
                    // Retried sheds are invisible to the caller, so the
                    // rate-sweep knee detector watches this counter.
                    lc_telemetry::counter("client.shed_observed").add(1);
                    last = format!("shed (retry_after {retry_after_ms}ms)");
                    u64::from(retry_after_ms)
                }
                Ok(resp) => return Ok(resp),
                Err(ClientError::Frame(FrameError::OverLimit { declared, limit })) => {
                    // Deterministic refusal; retrying cannot help.
                    return Err(ClientError::Frame(FrameError::OverLimit {
                        declared,
                        limit,
                    }));
                }
                Err(e) => {
                    last = e.to_string();
                    0
                }
            };
            if attempt + 1 < MAX_ATTEMPTS {
                let jitter_us = backoff_us(tag, attempt);
                std::thread::sleep(Duration::from_micros(
                    retry_after_ms
                        .saturating_mul(1000)
                        .saturating_add(jitter_us),
                ));
            }
        }
        Err(ClientError::Exhausted {
            attempts: MAX_ATTEMPTS,
            last,
        })
    }
}
