//! Concurrency model tests for the campaign executor's sharing surface.
//!
//! A campaign runs units through [`Pool::run_with_state`]: each worker
//! owns its scratch state and its unit's [`UnitPrefixCache`], and the
//! *only* cross-thread traffic is the shared [`CacheStats`] atomics
//! (hits/misses/lookups, evictions, resident-byte gauge). These tests
//! hammer that surface with deterministic pseudo-random schedules and
//! assert the invariants a model checker would:
//!
//! * **Exactly-once claiming** — the pool's dynamic scheduler hands
//!   every unit index to exactly one worker, and each worker sees its
//!   claims in increasing order (the property `LookbackScan` leans on).
//! * **Stats conservation** — after any interleaving of unit caches,
//!   `hits + misses == lookups` and the eviction count matches what the
//!   per-unit LRU actually dropped.
//! * **Resident gauge saturation** — concurrent unit-cache drops racing
//!   inserts never wrap the resident-bytes counter below zero; it ends
//!   at exactly zero once every cache is gone.
//!
//! Run with `cargo test -p lc-study --features model-check`.

#![cfg(feature = "model-check")]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use lc_core::KernelStats;
use lc_parallel::Pool;
use lc_study::prefix::{PrefixEntry, UnitPrefixCache};
use lc_study::runner::{ChunkedData, StageOutcome};
use lc_study::CacheStats;

/// splitmix64: deterministic schedule/workload perturbation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn step(&mut self) {
        match self.next() % 8 {
            0 => std::thread::yield_now(),
            1..=2 => {
                for _ in 0..(self.next() % 64) {
                    std::hint::spin_loop();
                }
            }
            _ => {}
        }
    }
}

fn entry(payload_bytes: usize) -> PrefixEntry {
    PrefixEntry {
        outcome: StageOutcome {
            output: ChunkedData {
                chunks: vec![vec![0u8; payload_bytes]],
            },
            enc: KernelStats::new(),
            dec: KernelStats::new(),
            applied: 1,
            skipped: 0,
        },
        times: vec![(1.0, 2.0)],
    }
}

/// Drive many units through `run_with_state`, each opening its own
/// `UnitPrefixCache` against one shared `CacheStats`, with workloads
/// sized to force evictions. Afterwards the shared stats must balance.
#[test]
fn run_with_state_unit_caches_keep_shared_stats_consistent() {
    const UNITS: usize = 64;
    const ITERS: u64 = 8;

    for iter in 0..ITERS {
        let stats = CacheStats::default();
        let computed = AtomicU64::new(0);
        let pool = Pool::new(8);
        pool.run_with_state(
            UNITS,
            Vec::<u8>::new, // per-worker scratch (contents irrelevant here)
            |_scratch, unit| {
                let mut rng = Rng::new(iter * 10_000 + unit as u64);
                // A cap that fits ~2 of the ~4 KiB entries: every unit
                // evicts, so eviction accounting races drops elsewhere.
                let mut cache = UnitPrefixCache::new(9000, &stats);
                cache
                    .level1(|| -> Result<_, ()> {
                        computed.fetch_add(1, Ordering::Relaxed);
                        Ok(entry(1000))
                    })
                    .unwrap();
                for _ in 0..40 {
                    let key = (rng.next() % 6) as usize;
                    cache
                        .level2(key, || -> Result<_, ()> {
                            computed.fetch_add(1, Ordering::Relaxed);
                            Ok(entry(4096))
                        })
                        .unwrap();
                    rng.step();
                }
                // Cache drops here, returning its residency to the gauge.
            },
        );
        let report = stats.report(); // debug-asserts hits + misses == lookups
        assert_eq!(
            report.hits + report.misses,
            (UNITS * 41) as u64,
            "iteration {iter}: every level1/level2 call is one classified lookup"
        );
        assert_eq!(
            report.misses,
            computed.load(Ordering::Relaxed),
            "iteration {iter}: every miss computed exactly once"
        );
        assert_eq!(
            stats.resident_bytes(),
            0,
            "iteration {iter}: all unit caches dropped, residency must return to zero"
        );
        assert!(
            report.peak_resident_bytes > 0 && report.peak_resident_bytes < u64::MAX / 2,
            "iteration {iter}: peak plausible, no wrap ({})",
            report.peak_resident_bytes
        );
    }
}

/// A monitor thread samples the resident gauge while unit caches churn
/// on pool workers. A wrap (the pre-saturation bug: a release racing a
/// concurrent add driving the counter below zero) would surface as a
/// sample near `u64::MAX`.
#[test]
fn resident_gauge_never_wraps_under_concurrent_unit_churn() {
    const UNITS: usize = 128;

    let stats = CacheStats::default();
    let done = AtomicU64::new(0);
    let max_seen = AtomicU64::new(0);
    std::thread::scope(|s| {
        let stats = &stats;
        let done = &done;
        let max_seen = &max_seen;
        s.spawn(move || {
            while done.load(Ordering::Acquire) == 0 {
                max_seen.fetch_max(stats.resident_bytes(), Ordering::Relaxed);
                std::hint::spin_loop();
            }
        });
        s.spawn(move || {
            let pool = Pool::new(8);
            pool.run_with_state(
                UNITS,
                || (),
                |_, unit| {
                    let mut rng = Rng::new(unit as u64);
                    let mut cache = UnitPrefixCache::new(5000, stats);
                    for _ in 0..20 {
                        let key = (rng.next() % 4) as usize;
                        cache
                            .level2(key, || -> Result<_, ()> { Ok(entry(4096)) })
                            .unwrap();
                        rng.step();
                    }
                },
            );
            done.store(1, Ordering::Release);
        });
    });
    let peak = max_seen.load(Ordering::Relaxed);
    // 8 workers × at most 2 resident ~4 KiB entries each, plus slack.
    // A wrapped counter would read ~2^64.
    assert!(peak < 64 * 1024 * 1024, "gauge wrapped or leaked: {peak}");
    assert_eq!(stats.resident_bytes(), 0, "residency returns to zero");
}

/// The dynamic scheduler claims every index exactly once, and each
/// worker's claim sequence is strictly increasing — the monotonicity
/// guarantee the decoupled look-back scan relies on to avoid deadlock.
#[test]
fn pool_claims_are_exactly_once_and_per_worker_monotonic() {
    const TASKS: usize = 5000;
    const ITERS: u64 = 10;

    for iter in 0..ITERS {
        let hits: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
        let pool = Pool::new(8);
        pool.run_with_state(TASKS, Vec::<usize>::new, |claimed, i| {
            let mut rng = Rng::new(iter * 31 + i as u64);
            if let Some(&prev) = claimed.last() {
                assert!(
                    prev < i,
                    "iteration {iter}: worker claimed {i} after {prev} — \
                         claims must be increasing"
                );
            }
            claimed.push(i);
            hits[i].fetch_add(1, Ordering::Relaxed);
            if rng.next().is_multiple_of(16) {
                rng.step();
            }
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "iteration {iter}: some index claimed zero or multiple times"
        );
    }
}
