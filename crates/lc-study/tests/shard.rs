//! Shard partition, merge, and per-shard lock semantics.
//!
//! Library-level: the round-robin partition is a true partition (union
//! of N shards == the full unit space, pairwise disjoint) and is stable
//! under every `--prune` mode; the merge refusal matrix rejects
//! incomplete, mixed-campaign, renamed, and cross-dataset shard sets.
//!
//! Binary-level: `reproduce --shard K/N` for every K followed by
//! `reproduce --merge` produces a `run.json` byte-identical to the
//! single-process sweep; per-shard locks neither false-conflict across
//! shards nor lose stale-lock reclaim.
#![cfg(target_os = "linux")]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use lc_study::campaign::{run_campaign_with, CampaignOptions, StudyConfig};
use lc_study::{journal, shard, PruneMode, ShardSpec, Space};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lc-shard-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One-file, two-family config: enough units (one per stage-1
/// component) that a 3-way partition is non-trivial, small enough that
/// each campaign finishes in about a second.
fn tiny_config() -> StudyConfig {
    let mut sc = StudyConfig::quick();
    sc.space = Space::restricted_to_families(&["DIFF", "RZE"]);
    sc.files = vec![&lc_data::SP_FILES[0]];
    sc
}

/// Run one shard of `sc` into `dir`, returning its journaled unit keys.
fn run_shard(
    sc: &StudyConfig,
    dir: &Path,
    spec: ShardSpec,
    prune: PruneMode,
) -> BTreeSet<(u64, u64)> {
    let opts = CampaignOptions {
        journal: Some(dir.join(spec.journal_file())),
        shard: Some(spec),
        prune,
        ..Default::default()
    };
    run_campaign_with(sc, &opts).expect("shard campaign");
    let j = journal::load(&dir.join(spec.journal_file())).expect("load shard journal");
    j.units
        .iter()
        .map(|u| {
            (
                u.get("file_index").and_then(|v| v.as_u64()).unwrap(),
                u.get("s1_index").and_then(|v| v.as_u64()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn partition_is_disjoint_complete_and_prune_stable() {
    let sc = tiny_config();
    let nc = sc.space.components.len() as u64;
    let full: BTreeSet<(u64, u64)> = (0..sc.files.len() as u64)
        .flat_map(|fi| (0..nc).map(move |i1| (fi, i1)))
        .collect();

    let n = 3;
    let mut per_mode: Vec<Vec<BTreeSet<(u64, u64)>>> = Vec::new();
    for prune in [PruneMode::Commute, PruneMode::Canonical, PruneMode::Off] {
        let dir = scratch_dir(&format!("partition-{}", prune.label()));
        let shards: Vec<BTreeSet<(u64, u64)>> = (0..n)
            .map(|index| run_shard(&sc, &dir, ShardSpec { index, count: n }, prune))
            .collect();
        // Pairwise disjoint…
        for a in 0..n {
            for b in (a + 1)..n {
                assert!(
                    shards[a].is_disjoint(&shards[b]),
                    "{}: shards {a} and {b} overlap",
                    prune.label()
                );
            }
        }
        // …and the union is exactly the full pruned space's unit set
        // (pruning skips cells inside units, never whole units).
        let union: BTreeSet<(u64, u64)> = shards.iter().flatten().copied().collect();
        assert_eq!(union, full, "{}: union != full space", prune.label());
        per_mode.push(shards);
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Membership is identical across prune modes.
    for shards in &per_mode[1..] {
        for (k, s) in shards.iter().enumerate() {
            assert_eq!(
                s, &per_mode[0][k],
                "shard {k} owns different units under different prune modes"
            );
        }
    }
}

#[test]
fn merge_refusal_matrix() {
    let sc = tiny_config();
    let mk = |spec: ShardSpec, prune: PruneMode, sc: &StudyConfig, dir: &Path| {
        let opts = CampaignOptions {
            journal: Some(dir.join(spec.journal_file())),
            shard: Some(spec),
            prune,
            ..Default::default()
        };
        run_campaign_with(sc, &opts).expect("shard campaign");
    };
    let merge_err = |dir: &Path| -> String {
        shard::merge_shards(dir, &dir.join("journal.jsonl")).expect_err("merge must refuse")
    };

    // Missing shard: only 1 of 2 present.
    let dir = scratch_dir("refuse-missing");
    mk(
        ShardSpec { index: 0, count: 2 },
        PruneMode::Commute,
        &sc,
        &dir,
    );
    let err = merge_err(&dir);
    assert!(err.contains("missing"), "{err}");

    // Mixed prune modes across shards.
    let dir2 = scratch_dir("refuse-prune");
    mk(
        ShardSpec { index: 0, count: 2 },
        PruneMode::Commute,
        &sc,
        &dir2,
    );
    mk(ShardSpec { index: 1, count: 2 }, PruneMode::Off, &sc, &dir2);
    let err = merge_err(&dir2);
    assert!(err.contains("prune mode"), "{err}");

    // Shards run on different input data: refused naming the dataset
    // difference, not as a generic fingerprint mismatch.
    let dir3 = scratch_dir("refuse-dataset");
    mk(
        ShardSpec { index: 0, count: 2 },
        PruneMode::Commute,
        &sc,
        &dir3,
    );
    let mut other = tiny_config();
    other.files = vec![&lc_data::SP_FILES[1]];
    mk(
        ShardSpec { index: 1, count: 2 },
        PruneMode::Commute,
        &other,
        &dir3,
    );
    let err = merge_err(&dir3);
    assert!(err.contains("different inputs"), "{err}");

    // A renamed journal (shard 1's file posing as shard 2): the meta's
    // own shard identity wins.
    let dir4 = scratch_dir("refuse-renamed");
    mk(
        ShardSpec { index: 0, count: 2 },
        PruneMode::Commute,
        &sc,
        &dir4,
    );
    std::fs::copy(
        dir4.join("journal.1-of-2.jsonl"),
        dir4.join("journal.2-of-2.jsonl"),
    )
    .unwrap();
    let err = merge_err(&dir4);
    assert!(err.contains("claims to be shard"), "{err}");

    // Inconsistent shard counts in one directory.
    let dir5 = scratch_dir("refuse-counts");
    mk(
        ShardSpec { index: 0, count: 1 },
        PruneMode::Commute,
        &sc,
        &dir5,
    );
    mk(
        ShardSpec { index: 0, count: 2 },
        PruneMode::Commute,
        &sc,
        &dir5,
    );
    let err = merge_err(&dir5);
    assert!(err.contains("inconsistent shard counts"), "{err}");

    for d in [dir, dir2, dir3, dir4, dir5] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

// ---- binary-level ----

fn reproduce(out: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reproduce"));
    cmd.args([
        "--families",
        "DIFF,RZE",
        "--files",
        "msg_bt",
        "--scale",
        "64",
        "--threads",
        "2",
        "--quiet",
        "--out",
    ])
    .arg(out)
    .stdout(Stdio::null())
    .stderr(Stdio::piped());
    cmd
}

#[test]
fn shard_runs_plus_merge_match_single_process_byte_for_byte() {
    // Single-process reference.
    let ref_dir = scratch_dir("merge-ref");
    let status = reproduce(&ref_dir).status().expect("reference run");
    assert!(status.success(), "reference run failed: {status:?}");
    let reference = std::fs::read(ref_dir.join("run.json")).expect("reference run.json");

    // The same campaign as two shard processes plus a merge.
    let dir = scratch_dir("merge");
    for k in ["1/2", "2/2"] {
        let out = reproduce(&dir)
            .args(["--shard", k])
            .output()
            .expect("shard run");
        assert!(
            out.status.success(),
            "shard {k} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !dir.join("run.json").exists(),
            "a shard child must not publish run.json"
        );
    }
    let out = reproduce(&dir).arg("--merge").output().expect("merge run");
    assert!(
        out.status.success(),
        "merge failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let merged = std::fs::read(dir.join("run.json")).expect("merged run.json");
    assert_eq!(
        merged, reference,
        "merged run.json differs from the single-process sweep"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_shard_locks_do_not_false_conflict_and_reclaim_stale() {
    let dir = scratch_dir("locks");

    // A live lock on shard 1 must not block shard 2…
    let spec1 = ShardSpec::parse("1/2").unwrap();
    let _held =
        lc_chaos::fs::LockFile::acquire_named(&dir, &spec1.lock_name()).expect("hold shard 1 lock");
    let out = reproduce(&dir)
        .args(["--shard", "2/2"])
        .output()
        .expect("shard 2 run");
    assert!(
        out.status.success(),
        "shard 2 must not conflict with shard 1's lock: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // …but it does block a second shard 1.
    let out = reproduce(&dir)
        .args(["--shard", "1/2"])
        .output()
        .expect("shard 1 contender");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("kind=lock"), "{stderr}");
    drop(_held);

    // A stale per-shard lock (dead pid) is reclaimed, per shard.
    std::fs::write(dir.join(spec1.lock_name()), "4194305\n").expect("plant stale lock");
    let out = reproduce(&dir)
        .args(["--shard", "1/2"])
        .output()
        .expect("shard 1 after stale lock");
    assert!(
        out.status.success(),
        "stale per-shard lock must be reclaimed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
