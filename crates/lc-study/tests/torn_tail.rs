//! Torn-tail property: truncate a valid journal at *every* byte offset
//! and put it through the resume machinery. A truncated journal models
//! a crash mid-append with any amount of the final record persisted.
//!
//! Two layers, matching how `--resume` consumes a journal:
//!
//! 1. **Every offset, recovery machinery** — `journal::load` +
//!    `JournalWriter::resume` must, for each prefix, either recover
//!    (valid records parsed, torn tail truncated away, appends resume
//!    after the last good line) or report the prefix as effectively
//!    empty (not even the meta line survived → the campaign starts
//!    fresh). Never a panic, never a hard error: a prefix of a valid
//!    journal is not mid-file corruption.
//! 2. **Sampled offsets, full campaign** — a complete
//!    `run_campaign_with(resume: true)` from the truncated journal must
//!    converge to results byte-identical to an uninterrupted run. Run
//!    at every record boundary ±1 and a coarse stride in between
//!    (full-campaign resumes are too slow for all offsets; layer 1
//!    already covers those exhaustively).
//!
//! Mid-file corruption, by contrast, must stay a refusal — covered by
//! the last test.

use lc_chaos::fs::SyncPolicy;
use lc_study::campaign::{run_campaign_with, CampaignOptions, StudyConfig};
use lc_study::{journal, report, Space};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn tiny_config() -> StudyConfig {
    let mut sc = StudyConfig::quick();
    sc.space = Space::restricted_to_families(&["DIFF", "RZE"]);
    sc.files = vec![&lc_data::SP_FILES[0]];
    sc
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lc-torn-tail-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Produce a complete valid journal plus the reference results.
fn journaled_reference(dir: &Path) -> (PathBuf, String, Vec<u8>) {
    let sc = tiny_config();
    let journal = dir.join("journal.jsonl");
    let opts = CampaignOptions {
        journal: Some(journal.clone()),
        ..Default::default()
    };
    let reference = run_campaign_with(&sc, &opts).expect("journaled reference run");
    let reference_json = report::to_json(&reference.measurements, &[]);
    let full = std::fs::read(&journal).expect("read complete journal");
    assert!(
        full.len() >= 64,
        "journal suspiciously small ({} bytes) — config produced no units?",
        full.len()
    );
    (journal, reference_json, full)
}

#[test]
fn recovery_machinery_survives_truncation_at_every_byte_offset() {
    let dir = scratch_dir("every-offset");
    let (journal, _, full) = journaled_reference(&dir);

    for cut in 0..=full.len() {
        std::fs::write(&journal, &full[..cut]).expect("write truncated journal");
        let empty = journal::effectively_empty(&journal)
            .unwrap_or_else(|e| panic!("cut {cut}: effectively_empty errored: {e}"));
        if empty {
            // Not even the meta record survived; the campaign would
            // recreate the journal from scratch. Nothing to load.
            continue;
        }
        let loaded = journal::load(&journal)
            .unwrap_or_else(|e| panic!("cut {cut}/{}: load refused a prefix: {e}", full.len()));
        assert!(
            loaded.valid_len <= cut as u64 + 1,
            "cut {cut}: valid_len {} reaches past the file (+1 is a final record \
             missing only its newline)",
            loaded.valid_len
        );
        assert_eq!(
            loaded.torn_bytes,
            (cut as u64).saturating_sub(loaded.valid_len),
            "cut {cut}: torn-byte accounting wrong"
        );
        // Appends must resume after the last good record: the writer
        // truncates the torn tail and restores the trailing newline.
        let writer =
            journal::JournalWriter::resume(&journal, loaded.valid_len, SyncPolicy::default())
                .unwrap_or_else(|e| panic!("cut {cut}: writer resume failed: {e}"));
        drop(writer);
        let repaired = std::fs::read(&journal).expect("read repaired journal");
        assert!(
            repaired.len() as u64 >= loaded.valid_len.min(cut as u64),
            "cut {cut}: repair lost validated bytes"
        );
        assert!(
            full.starts_with(&repaired) || repaired.ends_with(b"\n"),
            "cut {cut}: repaired journal is neither a prefix of the original nor \
             newline-terminated"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_resume_converges_from_sampled_truncations() {
    let sc = tiny_config();
    let dir = scratch_dir("sampled");
    let (journal, reference_json, full) = journaled_reference(&dir);

    // Every record boundary (the newline positions) ±1 byte, offsets 0
    // and len, plus a coarse stride through record interiors.
    let mut cuts: BTreeSet<usize> = [0, 1, full.len()].into_iter().collect();
    for (i, b) in full.iter().enumerate() {
        if *b == b'\n' {
            cuts.extend([i, i + 1, (i + 2).min(full.len())]);
        }
    }
    let mut pos = 17;
    while pos < full.len() {
        cuts.insert(pos);
        pos += 211;
    }

    for cut in cuts {
        std::fs::write(&journal, &full[..cut]).expect("write truncated journal");
        let resume_opts = CampaignOptions {
            journal: Some(journal.clone()),
            resume: true,
            ..Default::default()
        };
        let resumed = run_campaign_with(&sc, &resume_opts)
            .unwrap_or_else(|e| panic!("cut at byte {cut}/{}: resume failed: {e}", full.len()));
        let json = report::to_json(&resumed.measurements, &[]);
        assert_eq!(
            json,
            reference_json,
            "cut at byte {cut}/{}: resumed results differ",
            full.len()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-file corruption (a mangled record *before* the tail) must stay a
/// clean error, not be silently truncated away.
#[test]
fn mid_file_corruption_is_refused_not_repaired() {
    let sc = tiny_config();
    let dir = scratch_dir("midfile");
    let (journal, _, _) = journaled_reference(&dir);

    let text = std::fs::read_to_string(&journal).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "need meta + at least two unit records");
    // Mangle the second line (a unit record) while keeping later lines:
    // corruption is now mid-file, not a torn tail.
    let mut mangled: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    mangled[1] = mangled[1][..mangled[1].len() / 2].to_string();
    std::fs::write(&journal, format!("{}\n", mangled.join("\n"))).expect("write mangled");

    let resume_opts = CampaignOptions {
        journal: Some(journal),
        resume: true,
        ..Default::default()
    };
    let err = run_campaign_with(&sc, &resume_opts)
        .err()
        .expect("mid-file corruption must be a hard error");
    assert!(
        err.contains("corrupt"),
        "error should name the corruption, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
