//! Supervisor kill-soak: seeded SIGKILLs at work-unit boundaries.
//!
//! For every seed, a supervised 3-shard campaign runs with
//! `--chaos-kill <seed>`: each shard subprocess installs a fault plan
//! that SIGKILLs the process at ~15% of work-unit boundaries (strictly
//! *after* the finished unit's journal append, the process-level
//! analogue of the journal suite's torn-crash faults). The supervisor
//! must absorb every kill — relaunch with `--resume`, deterministic
//! backoff — and the campaign must converge to a `run.json`
//! byte-identical to an unsupervised, fault-free single-process run:
//! no lost units, no duplicated units, for every seed and schedule.
//!
//! Kills land after durable progress, so a shard with U units needs at
//! most U+1 launches; `--max-shard-retries` is set comfortably above
//! that bound and a shard quarantine is therefore a real bug, not bad
//! luck. One sequential `#[test]`, like the other soak suites, so
//! subprocess CPU load stays bounded. Override the seed count with
//! `LC_SHARD_SOAK_SEEDS=n` (default 16; CI runs the 64-seed floor).
#![cfg(target_os = "linux")]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lc-shard-soak-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create soak scratch dir");
    dir
}

/// Not `--quiet`: the soak parses the supervisor's per-shard attempt
/// summary from stderr (shard children are quieted by the supervisor
/// itself).
fn reproduce(out: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reproduce"));
    cmd.args([
        "--families",
        "DIFF,RZE",
        "--files",
        "msg_bt",
        "--scale",
        "64",
        "--threads",
        "2",
        "--out",
    ])
    .arg(out)
    .stdout(Stdio::null())
    .stderr(Stdio::piped());
    cmd
}

fn seeds() -> u64 {
    std::env::var("LC_SHARD_SOAK_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

#[test]
fn every_seed_converges_to_the_single_process_run_json() {
    // Fault-free single-process reference.
    let ref_dir = scratch_dir("ref");
    let status = reproduce(&ref_dir).status().expect("reference run");
    assert!(status.success(), "reference run failed: {status:?}");
    let reference = std::fs::read(ref_dir.join("run.json")).expect("reference run.json");

    let n = seeds();
    let mut relaunches = 0u64;
    for seed in 0..n {
        let dir = scratch_dir(&seed.to_string());
        let out = reproduce(&dir)
            .args([
                "--supervise",
                "3",
                "--workers",
                "2",
                "--chaos-kill",
                &seed.to_string(),
                // A shard owns at most ~units/3 + remainder units and
                // every kill lands after a journal append, so launches
                // are bounded by units+1; 30 is far above that.
                "--max-shard-retries",
                "30",
            ])
            .output()
            .expect("supervised run");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "seed {seed}: supervised campaign failed ({:?}):\n{stderr}",
            out.status
        );
        let merged = std::fs::read(dir.join("run.json"))
            .unwrap_or_else(|e| panic!("seed {seed}: merged run.json missing: {e}"));
        assert_eq!(
            merged, reference,
            "seed {seed}: supervised+merged run.json differs from the reference \
             (lost or duplicated work units)"
        );
        // The supervisor reports per-shard attempt counts on stderr;
        // launches beyond the first are recovered kills.
        for line in stderr.lines() {
            if let Some(rest) = line.strip_prefix("supervise: shard ") {
                if let Some(attempts) = rest
                    .split(" in ")
                    .nth(1)
                    .and_then(|s| s.split(' ').next())
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    relaunches += attempts.saturating_sub(1);
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The soak must actually exercise the kill path: across the whole
    // seed range at least one shard must have been killed and resumed.
    // (~15% of unit boundaries per attempt; the odds of zero kills
    // across every seed are negligible — if this fires, the chaos site
    // or the seed derivation is broken.)
    assert!(
        relaunches > 0,
        "no shard was ever killed+relaunched across {n} seeds — the kill fault site \
         is not firing"
    );
    let _ = std::fs::remove_dir_all(&ref_dir);
}
