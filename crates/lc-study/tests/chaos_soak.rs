//! Chaos soak: the capstone crash-consistency suite.
//!
//! For every seed in a fixed range, a tiny measurement campaign runs
//! under a seed-derived fault plan (`lc_chaos::FaultPlan::from_seed`)
//! that injects EINTR, short writes, ENOSPC, torn crashes, fsync
//! failures, allocation denials, and worker stalls into the journal
//! and artifact write paths. The invariant under test:
//!
//! > For every seed, the campaign either completes with results
//! > byte-identical to a fault-free run, or fails leaving on-disk
//! > state from which a fault-free `--resume` converges to results
//! > byte-identical to the fault-free run. It never panics and never
//! > silently produces wrong numbers.
//!
//! Fault injection is process-global, so this file holds a single
//! `#[test]` that walks the seeds sequentially; as its own integration
//! test binary it cannot interfere with other suites. Override the
//! seed count with `LC_CHAOS_SOAK_SEEDS=n` (default 64, the CI floor).

use lc_chaos::fs::SyncPolicy;
use lc_chaos::FaultPlan;
use lc_study::campaign::{run_campaign_with, CampaignOptions, StudyConfig};
use lc_study::{report, Space};
use std::path::PathBuf;

/// Small but non-trivial: two stage-1 families, two inputs, so the
/// campaign journals multiple units per file and exercises the
/// per-file checkpoint path.
fn soak_config() -> StudyConfig {
    let mut sc = StudyConfig::quick();
    sc.space = Space::restricted_to_families(&["DIFF", "RZE"]);
    sc.files = vec![&lc_data::SP_FILES[0], &lc_data::SP_FILES[10]];
    sc
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lc-chaos-soak-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create soak scratch dir");
    dir
}

fn seeds() -> u64 {
    std::env::var("LC_CHAOS_SOAK_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

#[test]
fn every_seed_completes_or_resumes_to_identical_results() {
    let sc = soak_config();

    // Fault-free reference: no journal, no chaos.
    let reference = run_campaign_with(&sc, &CampaignOptions::default())
        .expect("reference campaign must succeed");
    let reference_json = report::to_json(&reference.measurements, &[]);

    let n = seeds();
    let (mut clean, mut recovered) = (0u64, 0u64);
    for seed in 0..n {
        let dir = scratch_dir(&seed.to_string());
        let journal = dir.join("journal.jsonl");
        // Cycle the durability policy so every mode soaks.
        let fsync = match seed % 3 {
            0 => SyncPolicy::Never,
            1 => SyncPolicy::Checkpoint,
            _ => SyncPolicy::Always,
        };
        let opts = CampaignOptions {
            journal: Some(journal.clone()),
            fsync,
            mem_budget_mb: if seed % 4 == 0 { Some(64) } else { None },
            ..Default::default()
        };

        let chaotic = {
            let _guard = lc_chaos::install(FaultPlan::from_seed(seed));
            run_campaign_with(&sc, &opts)
        };
        match chaotic {
            Ok(outcome) => {
                let json = report::to_json(&outcome.measurements, &[]);
                assert_eq!(
                    json, reference_json,
                    "seed {seed}: campaign completed under chaos but results differ"
                );
                clean += 1;
            }
            Err(err) => {
                // The run died mid-campaign. Whatever it left behind —
                // no journal, a torn meta line, a torn unit record, a
                // frozen checkpointed prefix — a fault-free resume must
                // converge to the reference results.
                let resume_opts = CampaignOptions {
                    journal: Some(journal.clone()),
                    resume: true,
                    ..Default::default()
                };
                let resumed = run_campaign_with(&sc, &resume_opts).unwrap_or_else(|e| {
                    panic!("seed {seed}: chaos error ({err}) then resume failed: {e}")
                });
                let json = report::to_json(&resumed.measurements, &[]);
                assert_eq!(
                    json, reference_json,
                    "seed {seed}: resumed results differ from fault-free run"
                );
                recovered += 1;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    // The soak is only meaningful if both classes actually occurred:
    // all-clean means the fault rates are too low to exercise recovery,
    // all-error means completion under transient faults is broken.
    assert!(clean > 0, "no seed completed under chaos ({n} seeds)");
    assert!(
        recovered > 0,
        "no seed exercised crash recovery ({n} seeds)"
    );
    println!(
        "chaos soak: {n} seeds, {clean} completed under faults, {recovered} recovered via resume"
    );
}

/// Transient-only plans (EINTR + short writes at 100% op rate) must be
/// absorbed invisibly: the campaign completes and matches the
/// fault-free reference without any resume.
#[test]
fn transient_only_plans_complete_without_recovery() {
    let mut sc = soak_config();
    sc.files = vec![&lc_data::SP_FILES[0]];
    let reference =
        run_campaign_with(&sc, &CampaignOptions::default()).expect("reference campaign");
    let reference_json = report::to_json(&reference.measurements, &[]);

    for seed in 0..8 {
        let dir = scratch_dir(&format!("transient-{seed}"));
        let opts = CampaignOptions {
            journal: Some(dir.join("journal.jsonl")),
            ..Default::default()
        };
        let outcome = {
            let _guard = lc_chaos::install(FaultPlan::transient_only(seed));
            run_campaign_with(&sc, &opts)
        };
        let outcome = outcome.unwrap_or_else(|e| {
            panic!("seed {seed}: transient-only faults must be absorbed, got: {e}")
        });
        assert_eq!(
            report::to_json(&outcome.measurements, &[]),
            reference_json,
            "seed {seed}: transient-only run produced different results"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
