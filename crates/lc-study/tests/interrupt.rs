//! End-to-end interrupt and lock semantics of the `reproduce` binary:
//!
//! * SIGINT mid-campaign exits with code 7 (interrupted-but-resumable)
//!   after checkpointing the journal; a `--resume` rerun completes and
//!   writes a `run.json` byte-identical to an uninterrupted run.
//! * A second campaign on a locked output directory exits 1 without
//!   touching the journal.
//! * A stale lock left by a dead process is reclaimed, not fatal.
//!
//! Signal delivery and `/proc`-based liveness are Linux-specific, so
//! the whole suite is gated on `target_os = "linux"`.
#![cfg(target_os = "linux")]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Exit code the binary documents for a resumable interrupt.
const EXIT_INTERRUPTED: i32 = 7;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lc-interrupt-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A campaign small enough to finish in seconds but long enough that a
/// signal sent shortly after the journal appears lands mid-campaign.
fn reproduce(out: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reproduce"));
    cmd.args([
        "--families",
        "DIFF,RZE",
        "--files",
        "msg_bt",
        "--scale",
        "64",
        "--threads",
        "2",
        "--quiet",
        "--out",
    ])
    .arg(out)
    .stdout(Stdio::null())
    .stderr(Stdio::piped());
    cmd
}

fn wait_for(path: &Path, timeout: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if path.exists() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn sigint_exits_7_and_resume_produces_identical_run_json() {
    // Uninterrupted reference run.
    let ref_dir = scratch_dir("sigint-ref");
    let status = reproduce(&ref_dir).status().expect("spawn reference run");
    assert!(status.success(), "reference run failed: {status:?}");
    let reference = std::fs::read(ref_dir.join("run.json")).expect("reference run.json");

    // Interrupted run: wait for the journal to appear (campaign underway),
    // give it a moment to complete some units, then SIGINT.
    let dir = scratch_dir("sigint");
    let mut child = reproduce(&dir).spawn().expect("spawn campaign");
    assert!(
        wait_for(&dir.join("journal.jsonl"), Duration::from_secs(30)),
        "journal never appeared — campaign did not start"
    );
    std::thread::sleep(Duration::from_millis(300));
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(kill.success(), "kill -INT failed");
    let status = child.wait().expect("wait for interrupted child");
    assert_eq!(
        status.code(),
        Some(EXIT_INTERRUPTED),
        "SIGINT mid-campaign must exit with the resumable-interrupt code"
    );
    assert!(
        !dir.join("run.json").exists(),
        "an interrupted campaign must not publish run.json"
    );

    // Resume must converge to the byte-identical artifact.
    let mut resume = reproduce(&dir);
    resume.arg("--resume");
    let status = resume.status().expect("spawn resume run");
    assert!(status.success(), "resume run failed: {status:?}");
    let resumed = std::fs::read(dir.join("run.json")).expect("resumed run.json");
    assert_eq!(
        resumed, reference,
        "resumed run.json differs from uninterrupted reference"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_campaign_on_locked_dir_exits_1() {
    let dir = scratch_dir("locked");
    let _lock = lc_chaos::fs::LockFile::acquire(&dir).expect("take the lock first");
    let out = reproduce(&dir).output().expect("spawn contender");
    assert_eq!(
        out.status.code(),
        Some(1),
        "contender should fail fast with exit 1"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("kind=lock"),
        "stderr should blame the lock, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_lock_from_dead_process_is_reclaimed() {
    let dir = scratch_dir("stale");
    // PID 4194305 exceeds the kernel's default pid_max, so no live
    // process can own it; the lock is provably stale.
    std::fs::write(dir.join(lc_chaos::fs::LockFile::NAME), "4194305\n").expect("plant stale lock");
    let status = reproduce(&dir).status().expect("spawn campaign");
    assert!(
        status.success(),
        "stale lock must be reclaimed, got {status:?}"
    );
    assert!(dir.join("run.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
