//! Deterministic sharding of the campaign work-unit space, plus the
//! byte-identical merge of shard journals back into one campaign
//! journal.
//!
//! # Partition
//!
//! The campaign's unit of crash-consistent progress is the work unit
//! `(file_index, s1_index)` — one input file crossed with one
//! first-stage component, covering every `(s2, s3)` cell in its rows.
//! Sharding assigns units round-robin by their global index:
//!
//! ```text
//! unit(file_i, i1) = file_i * nc + i1        (nc = component count)
//! shard K of N owns unit u  ⇔  u % N == K    (0-based K internally)
//! ```
//!
//! Three properties fall out by construction:
//!
//! * **Disjoint + complete** — `u % N` is a partition of the integers,
//!   so the union of N shards is the full space and no unit appears in
//!   two shards.
//! * **Prune-stable** — pruning (`--prune commute|canonical`) skips
//!   *cells inside* a unit, never unit membership, so the same shard
//!   owns the same units under every prune mode. (Pruned cells are
//!   journaled as zeros, exactly as in the single-process run.)
//! * **Balanced** — round-robin interleaves files across shards, so a
//!   slow file's 62 units spread over all shards instead of landing on
//!   one.
//!
//! # Merge
//!
//! Each shard writes an independent journal (`journal.K-of-N.jsonl`)
//! whose meta line carries a `"shard": "K/N"` field on top of the usual
//! fingerprint. [`merge_shards`] fuses a complete shard set into one
//! `journal.jsonl` with the `shard` field removed and units sorted in
//! the campaign's canonical `(file_index, s1_index)` order; resuming
//! from the merged journal then recomputes nothing and — because the
//! journal stores exact shortest-round-trip float bits and the campaign
//! accumulates in a fixed sequential order — produces a `run.json`
//! byte-identical to the single-process sweep.
//!
//! The merge *refuses* (structured error, nothing written) any set of
//! journals that could silently produce a wrong run: missing or
//! extra shards, mismatched prune mode or class-map fingerprint,
//! different dataset digests (shards run on different inputs), a unit
//! recorded in a shard that does not own it, or any other fingerprint
//! disagreement.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use lc_chaos::fs::{atomic_write, SyncPolicy};
use lc_json::Value;

use crate::campaign::strip_informational;
use crate::journal;

/// Upper bound on shard count: far above any plausible host fan-out,
/// low enough that a typo (`--shard 1/1000000`) fails fast instead of
/// creating a million-file merge obligation.
pub const MAX_SHARDS: usize = 1024;

/// One shard's identity within an N-way campaign partition.
///
/// CLI syntax is 1-based (`--shard 2/4` is the second of four);
/// internally `index` is 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 0-based shard index, `< count`.
    pub index: usize,
    /// Total shard count, `>= 1`.
    pub count: usize,
}

impl ShardSpec {
    /// Parse the CLI form `K/N` (1-based K). Errors are full sentences
    /// suitable for a structured `error: kind=shard` line.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| format!("invalid shard spec {s:?}: expected K/N, e.g. 2/4"))?;
        let k: usize = k
            .trim()
            .parse()
            .map_err(|_| format!("invalid shard index in {s:?}: expected an integer"))?;
        let n: usize = n
            .trim()
            .parse()
            .map_err(|_| format!("invalid shard count in {s:?}: expected an integer"))?;
        if n == 0 || n > MAX_SHARDS {
            return Err(format!(
                "shard count {n} out of range: expected 1..={MAX_SHARDS}"
            ));
        }
        if k == 0 || k > n {
            return Err(format!(
                "shard index {k} out of range for {n} shards: expected 1..={n}"
            ));
        }
        Ok(Self {
            index: k - 1,
            count: n,
        })
    }

    /// Filesystem-safe label, 1-based: `"2-of-4"`.
    pub fn label(&self) -> String {
        format!("{}-of-{}", self.index + 1, self.count)
    }

    /// Journal-meta label, 1-based: `"2/4"` (matches the CLI form).
    pub fn meta_label(&self) -> String {
        format!("{}/{}", self.index + 1, self.count)
    }

    /// This shard's journal file name inside the output directory.
    pub fn journal_file(&self) -> String {
        format!("journal.{}.jsonl", self.label())
    }

    /// This shard's lock file name (see `LockFile::acquire_named`):
    /// shards sharing one output directory must not false-conflict.
    pub fn lock_name(&self) -> String {
        format!("{}.{}", lc_chaos::fs::LockFile::NAME, self.label())
    }

    /// Whether this shard owns global work-unit index `unit`.
    pub fn owns(&self, unit: usize) -> bool {
        unit % self.count == self.index
    }
}

/// The global work-unit index sharding partitions on.
pub fn unit_index(file_i: usize, i1: usize, nc: usize) -> usize {
    file_i * nc + i1
}

/// Summary of a completed merge, for operator output.
#[derive(Debug)]
pub struct MergeReport {
    /// Shard count N (all N journals were present and consistent).
    pub shards: usize,
    /// Completed work units carried into the merged journal.
    pub units: usize,
    /// Quarantine records carried into the merged journal.
    pub quarantined: usize,
    /// Total torn-tail bytes dropped across shard journals. Nonzero is
    /// not an error — the affected units simply re-run on resume.
    pub torn_bytes: u64,
}

/// Find every shard journal (`journal.K-of-N.jsonl`) in `dir` and
/// return them sorted by shard index, refusing inconsistent or
/// incomplete sets.
pub fn discover_shards(dir: &Path) -> Result<Vec<(ShardSpec, PathBuf)>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read output directory {}: {e}", dir.display()))?;
    let mut found: Vec<(ShardSpec, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read directory entry: {e}"))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(spec) = parse_journal_name(name) else {
            continue;
        };
        found.push((spec, entry.path()));
    }
    if found.is_empty() {
        return Err(format!(
            "no shard journals (journal.K-of-N.jsonl) found in {}",
            dir.display()
        ));
    }
    let n = found[0].0.count;
    if let Some((bad, _)) = found.iter().find(|(s, _)| s.count != n) {
        return Err(format!(
            "inconsistent shard counts in {}: found both {}-way and {}-way journals; \
             merge one campaign at a time",
            dir.display(),
            n,
            bad.count
        ));
    }
    found.sort_by_key(|(s, _)| s.index);
    let present: HashSet<usize> = found.iter().map(|(s, _)| s.index).collect();
    let missing: Vec<String> = (0..n)
        .filter(|i| !present.contains(i))
        .map(|i| format!("{}-of-{n}", i + 1))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "incomplete shard set in {}: missing {} of {n} shard journals ({})",
            dir.display(),
            missing.len(),
            missing.join(", ")
        ));
    }
    Ok(found)
}

/// Parse `journal.K-of-N.jsonl` into a [`ShardSpec`]; `None` for any
/// other file name.
fn parse_journal_name(name: &str) -> Option<ShardSpec> {
    let middle = name.strip_prefix("journal.")?.strip_suffix(".jsonl")?;
    let (k, n) = middle.split_once("-of-")?;
    let spec = ShardSpec::parse(&format!("{k}/{n}")).ok()?;
    // Round-trip guard: reject zero-padded or otherwise non-canonical
    // spellings so one shard cannot appear under two names.
    (spec.journal_file() == name).then_some(spec)
}

/// Meta comparison for merging: the shard field is *expected* to differ
/// between shard journals, everything else fingerprint-relevant must
/// match.
fn strip_shard(meta: &Value) -> Value {
    match strip_informational(meta) {
        Value::Object(fields) => Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k.as_str() != "shard")
                .collect(),
        ),
        other => other,
    }
}

fn meta_str<'a>(meta: &'a Value, key: &str) -> Option<&'a str> {
    meta.get(key).and_then(Value::as_str)
}

/// Component count `nc` recovered from the meta `"space"` field
/// (`"comp1,comp2,…|red1,…"`): ownership validation needs it to map a
/// journaled `(file_index, s1_index)` back to its global unit index.
fn component_count(meta: &Value) -> Result<usize, String> {
    let space = meta_str(meta, "space").ok_or("shard journal meta missing space")?;
    let comps = space.split('|').next().unwrap_or("");
    let nc = comps.split(',').filter(|s| !s.is_empty()).count();
    if nc == 0 {
        return Err(format!("unparseable space field {space:?} in shard meta"));
    }
    Ok(nc)
}

/// Fuse a complete, consistent shard set in `dir` into `merged`
/// (atomically written), or refuse with a structured error naming the
/// first inconsistency. On success the merged journal is exactly what a
/// single-process campaign would have journaled for the same completed
/// units: meta without the shard field, units in canonical order.
pub fn merge_shards(dir: &Path, merged: &Path) -> Result<MergeReport, String> {
    let shards = discover_shards(dir)?;
    let n = shards[0].0.count;

    let mut loaded = Vec::with_capacity(shards.len());
    for (spec, path) in &shards {
        if journal::effectively_empty(path).unwrap_or(false) {
            return Err(format!(
                "shard {} journal {} has no complete records (the shard never \
                 started); run it before merging",
                spec.label(),
                path.display()
            ));
        }
        let j = journal::load(path)
            .map_err(|e| format!("shard {} journal unreadable: {e}", spec.label()))?;
        // Self-consistency: the meta must agree with the file name it
        // lives under, otherwise a renamed journal could smuggle a
        // foreign shard's units into the wrong slots.
        match meta_str(&j.meta, "shard") {
            Some(label) if label == spec.meta_label() => {}
            Some(label) => {
                return Err(format!(
                    "shard journal {} claims to be shard {label} in its meta; \
                     the file was renamed or the set was assembled from \
                     different campaigns",
                    path.display()
                ));
            }
            None => {
                return Err(format!(
                    "shard journal {} has no shard field in its meta (it is a \
                     whole-campaign journal, not a shard)",
                    path.display()
                ));
            }
        }
        loaded.push((*spec, j));
    }

    // Cross-shard fingerprint agreement, most-specific check first so
    // the error names the actual operational mistake.
    let (ref_spec, ref_j) = (&loaded[0].0, &loaded[0].1);
    for (spec, j) in &loaded[1..] {
        for (field, what) in [
            ("prune", "prune mode"),
            ("class_map", "canonical class-map fingerprint"),
        ] {
            let a = meta_str(&ref_j.meta, field);
            let b = meta_str(&j.meta, field);
            if a != b {
                return Err(format!(
                    "shard {} and shard {} were run under different {what} \
                     ({:?} vs {:?}); their unit rows are not comparable — \
                     re-run the shards under one mode",
                    ref_spec.label(),
                    spec.label(),
                    a.unwrap_or("off"),
                    b.unwrap_or("off"),
                ));
            }
        }
        let da = ref_j.meta.get("dataset").and_then(Value::as_array);
        let db = j.meta.get("dataset").and_then(Value::as_array);
        if da != db {
            let detail = first_dataset_difference(da, db)
                .unwrap_or_else(|| "different dataset digest lists".to_string());
            return Err(format!(
                "shard {} and shard {} were run on different inputs: {detail}; \
                 merging them would produce a silently wrong run.json",
                ref_spec.label(),
                spec.label(),
            ));
        }
        if strip_shard(&ref_j.meta) != strip_shard(&j.meta) {
            return Err(format!(
                "shard {} and shard {} have incompatible campaign fingerprints \
                 (journal version, space, files, opt levels, scale, verify, or \
                 configs differ); merge refuses mixed campaigns",
                ref_spec.label(),
                spec.label(),
            ));
        }
    }

    let nc = component_count(&ref_j.meta)?;

    // Collect units, validating ownership and uniqueness.
    let mut units: Vec<((usize, usize), Value)> = Vec::new();
    let mut quarantined: Vec<((usize, usize), Value)> = Vec::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut torn_bytes = 0u64;
    for (spec, j) in &loaded {
        torn_bytes += j.torn_bytes;
        for (kind, records, out) in [
            ("unit", &j.units, &mut units),
            ("quarantine", &j.quarantined, &mut quarantined),
        ] {
            for v in records {
                let key = record_key(v)
                    .ok_or_else(|| format!("malformed {kind} record in shard {}", spec.label()))?;
                if !spec.owns(unit_index(key.0, key.1, nc)) {
                    return Err(format!(
                        "shard {} journal contains unit (file {}, s1 {}) which \
                         it does not own; the journal was corrupted or \
                         hand-edited",
                        spec.label(),
                        key.0,
                        key.1
                    ));
                }
                if !seen.insert(key) {
                    return Err(format!(
                        "unit (file {}, s1 {}) appears more than once across \
                         shard journals; refusing to guess which record wins",
                        key.0, key.1
                    ));
                }
                out.push((key, v.clone()));
            }
        }
    }
    units.sort_by_key(|(k, _)| *k);
    quarantined.sort_by_key(|(k, _)| *k);

    // The merged journal is byte-for-byte what the single-process
    // campaign's writer emits: one dumped record per line.
    let mut buf = String::new();
    buf.push_str(&strip_shard_keep_informational(&ref_j.meta).dump());
    buf.push('\n');
    for (_, v) in &units {
        buf.push_str(&v.dump());
        buf.push('\n');
    }
    for (_, v) in &quarantined {
        buf.push_str(&v.dump());
        buf.push('\n');
    }
    atomic_write(merged, buf.as_bytes(), SyncPolicy::Checkpoint)
        .map_err(|e| format!("cannot write merged journal {}: {e}", merged.display()))?;

    Ok(MergeReport {
        shards: n,
        units: units.len(),
        quarantined: quarantined.len(),
        torn_bytes,
    })
}

/// Remove only the `shard` field, keeping informational fields (sweep)
/// so the merged meta is exactly a single-process meta line.
fn strip_shard_keep_informational(meta: &Value) -> Value {
    match meta {
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .filter(|(k, _)| k.as_str() != "shard")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

fn record_key(v: &Value) -> Option<(usize, usize)> {
    let f = v.get("file_index").and_then(Value::as_u64)? as usize;
    let i1 = v.get("s1_index").and_then(Value::as_u64)? as usize;
    Some((f, i1))
}

/// Name the first differing dataset entry for the refusal message.
/// Shared with the campaign's resume path, which makes the same check
/// against its freshly computed meta.
pub(crate) fn first_dataset_difference(a: Option<&[Value]>, b: Option<&[Value]>) -> Option<String> {
    let (a, b) = (a?, b?);
    for (x, y) in a.iter().zip(b.iter()) {
        let (x, y) = (x.as_str()?, y.as_str()?);
        if x != y {
            return Some(format!("digest mismatch ({x} vs {y})"));
        }
    }
    if a.len() != b.len() {
        return Some(format!(
            "one set has {} input files, the other {}",
            a.len(),
            b.len()
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_one_based_and_rejects_junk() {
        let s = ShardSpec::parse("2/4").unwrap();
        assert_eq!((s.index, s.count), (1, 4));
        assert_eq!(s.label(), "2-of-4");
        assert_eq!(s.meta_label(), "2/4");
        assert_eq!(s.journal_file(), "journal.2-of-4.jsonl");
        assert_eq!(s.lock_name(), ".campaign.lock.2-of-4");
        for bad in ["0/4", "5/4", "1/0", "x/4", "4", "1/9999999", ""] {
            assert!(ShardSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn ownership_partitions_every_unit_space() {
        for n in [1usize, 2, 3, 4, 7] {
            let shards: Vec<ShardSpec> =
                (0..n).map(|index| ShardSpec { index, count: n }).collect();
            for unit in 0..500 {
                let owners = shards.iter().filter(|s| s.owns(unit)).count();
                assert_eq!(owners, 1, "unit {unit} owned by {owners} of {n} shards");
            }
        }
    }

    #[test]
    fn journal_name_round_trips_and_rejects_non_canonical() {
        let spec = ShardSpec::parse("3/8").unwrap();
        assert_eq!(parse_journal_name(&spec.journal_file()), Some(spec));
        for bad in [
            "journal.jsonl",
            "journal.03-of-8.jsonl",
            "journal.3-of-8.jsonl.bak",
            "journal.3of8.jsonl",
            "run.json",
        ] {
            assert_eq!(parse_journal_name(bad), None, "accepted {bad:?}");
        }
    }
}
