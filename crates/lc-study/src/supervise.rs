//! The shard supervisor: spawns `reproduce --shard K/N` subprocesses,
//! watches them, and retries crashes with bounded deterministic backoff.
//!
//! # Why supervision instead of trust
//!
//! A full-space campaign (107,632 pipelines × 13 files) runs for hours;
//! at that horizon processes die — OOM kills, node reboots, `kill -9`
//! from an impatient operator. The shard layer already makes every
//! death cheap (each shard is an independent crash-consistent journal,
//! so a restarted shard resumes at its last completed unit); the
//! supervisor makes death *routine*: a shard that exits any way other
//! than cleanly is relaunched with `--resume`, and only a shard that
//! keeps failing past the retry budget is **quarantined** — reported,
//! skipped, campaign continues — mirroring the per-unit quarantine
//! semantics (exit 5) one level up.
//!
//! # State machine (per shard)
//!
//! ```text
//!          spawn                 exit 0            exit 5
//! pending ───────► running ──────────────► Done    ──► DoneQuarantinedUnits
//!    ▲                │
//!    │   backoff      │ exit 7 / signal / other
//!    └────────────────┘   (attempt < retries)
//!                         attempt == retries ──► ShardQuarantined
//! ```
//!
//! Backoff is the chaos layer's deterministic schedule
//! ([`lc_chaos::fs::backoff_us`], seeded by shard index and attempt) so
//! a soak failure replays identically. At most `workers` shards run
//! concurrently; each child is an ordinary OS process, so a SIGKILL
//! that bypasses every in-process handler still lands exactly where the
//! soak wants it.
//!
//! The supervisor itself is cancellable: on Ctrl-C it kills the running
//! children (they hold per-shard locks and journals, both of which are
//! built to survive this) and reports `interrupted`, mapping to the
//! campaign's resumable exit 7.

use std::process::{Child, Command, ExitStatus};
use std::time::{Duration, Instant};

use lc_parallel::CancelToken;

use crate::shard::ShardSpec;

/// How one shard's supervision ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOutcome {
    /// Exit 0: every owned unit journaled.
    Done,
    /// Exit 5: the shard finished but quarantined some of its *units*
    /// (panic/deadline) — campaign-level success with caveats, exactly
    /// like a single-process run that exits 5.
    DoneQuarantinedUnits,
    /// The shard failed on every attempt; the campaign proceeds without
    /// it and the operator re-runs it by hand (its journal keeps all
    /// progress made so far).
    ShardQuarantined {
        /// Human-readable description of the final failure.
        last_status: String,
    },
    /// Supervision was cancelled before the shard finished.
    Interrupted,
}

/// One shard's supervision record.
#[derive(Debug)]
pub struct ShardRun {
    pub spec: ShardSpec,
    /// Launch attempts consumed (1 for a clean first run).
    pub attempts: u32,
    pub outcome: ShardOutcome,
}

/// The full supervision result.
#[derive(Debug)]
pub struct SupervisorReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardRun>,
    /// True if supervision was cancelled (Ctrl-C / deadline) — the
    /// campaign is resumable, not failed.
    pub interrupted: bool,
    /// Wall time of the whole supervised phase.
    pub wall: Duration,
}

impl SupervisorReport {
    /// Shards that failed persistently.
    pub fn quarantined(&self) -> impl Iterator<Item = &ShardRun> {
        self.shards
            .iter()
            .filter(|s| matches!(s.outcome, ShardOutcome::ShardQuarantined { .. }))
    }

    /// True when every shard completed (possibly with unit-level
    /// quarantines) — the precondition for merging.
    pub fn all_done(&self) -> bool {
        self.shards.iter().all(|s| {
            matches!(
                s.outcome,
                ShardOutcome::Done | ShardOutcome::DoneQuarantinedUnits
            )
        })
    }
}

/// Deterministic relaunch delay for `(shard, attempt)`: the chaos
/// layer's seeded exponential-plus-jitter schedule, scaled up from
/// syscall-retry range (~200 µs) into process-relaunch range (a few
/// ms), capped by the `.min(6)` shift. Deterministic so soak failures
/// replay identically; short enough that tests retrying dozens of
/// seeded kills stay fast (a real crash-looping shard burns its whole
/// retry budget in well under a second, which is fine — the budget, not
/// the delay, is the protection).
fn relaunch_delay(shard: usize, attempt: u32) -> Duration {
    let tag = 0x5AAD_0000_u64 ^ (shard as u64);
    Duration::from_micros(lc_chaos::fs::backoff_us(tag, attempt.min(6)) * 8)
}

fn status_label(status: ExitStatus) -> String {
    if let Some(code) = status.code() {
        return format!("exit code {code}");
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("killed by signal {sig}");
        }
    }
    "unknown exit status".to_string()
}

struct Pending {
    shard: usize,
    attempt: u32,
    ready_at: Instant,
}

struct Running {
    shard: usize,
    attempt: u32,
    child: Child,
}

/// Supervise an N-way sharded campaign with at most `workers`
/// concurrent shard subprocesses.
///
/// `command_for(spec, attempt)` builds the (not yet spawned) command
/// for one launch; the caller decides binary, flags, and chaos seeds —
/// the supervisor only decides *when* to launch and how to classify the
/// exit. `max_retries` is the number of *re*launches allowed per shard
/// after its first attempt (so every shard runs at most
/// `max_retries + 1` times).
pub fn run_supervisor(
    count: usize,
    workers: usize,
    max_retries: u32,
    cancel: &CancelToken,
    mut command_for: impl FnMut(&ShardSpec, u32) -> Command,
) -> Result<SupervisorReport, String> {
    if count == 0 {
        return Err("shard count must be at least 1".to_string());
    }
    let workers = workers.clamp(1, count);
    let start = Instant::now();
    let specs: Vec<ShardSpec> = (0..count).map(|index| ShardSpec { index, count }).collect();
    let mut outcomes: Vec<Option<(u32, ShardOutcome)>> = (0..count).map(|_| None).collect();
    let mut pending: Vec<Pending> = (0..count)
        .map(|shard| Pending {
            shard,
            attempt: 0,
            ready_at: start,
        })
        .collect();
    let mut running: Vec<Running> = Vec::new();
    let mut interrupted = false;

    loop {
        if cancel.is_cancelled() && !interrupted {
            interrupted = true;
            // Children hold per-shard locks and crash-consistent
            // journals; killing them loses at most the in-flight units.
            for r in &mut running {
                let _ = r.child.kill();
            }
            for p in pending.drain(..) {
                outcomes[p.shard] = Some((p.attempt, ShardOutcome::Interrupted));
            }
        }

        // Reap finished children.
        let mut still_running = Vec::with_capacity(running.len());
        for mut r in running {
            match r.child.try_wait() {
                Ok(Some(status)) => {
                    let attempt = r.attempt + 1;
                    if interrupted {
                        outcomes[r.shard] = Some((attempt, ShardOutcome::Interrupted));
                        continue;
                    }
                    match status.code() {
                        Some(0) => {
                            outcomes[r.shard] = Some((attempt, ShardOutcome::Done));
                        }
                        Some(5) => {
                            outcomes[r.shard] = Some((attempt, ShardOutcome::DoneQuarantinedUnits));
                        }
                        // Exit 7 (interrupted-but-resumable), death by
                        // signal, and every other nonzero exit all mean
                        // the same thing here: the shard did not finish,
                        // its journal did not lose completed units, try
                        // again.
                        _ => {
                            if attempt > max_retries {
                                outcomes[r.shard] = Some((
                                    attempt,
                                    ShardOutcome::ShardQuarantined {
                                        last_status: status_label(status),
                                    },
                                ));
                            } else {
                                pending.push(Pending {
                                    shard: r.shard,
                                    attempt,
                                    ready_at: Instant::now() + relaunch_delay(r.shard, attempt),
                                });
                            }
                        }
                    }
                }
                Ok(None) => still_running.push(r),
                Err(e) => {
                    // try_wait failing is a supervisor-side defect, not
                    // a shard failure; don't burn the shard's budget.
                    return Err(format!(
                        "cannot poll shard {} subprocess: {e}",
                        specs[r.shard].label()
                    ));
                }
            }
        }
        running = still_running;

        // Launch ready work, earliest-ready first for determinism.
        if !interrupted {
            pending.sort_by_key(|p| (p.ready_at, p.shard));
            while running.len() < workers {
                let now = Instant::now();
                let Some(pos) = pending.iter().position(|p| p.ready_at <= now) else {
                    break;
                };
                let p = pending.remove(pos);
                let spec = specs[p.shard];
                match command_for(&spec, p.attempt).spawn() {
                    Ok(child) => running.push(Running {
                        shard: p.shard,
                        attempt: p.attempt,
                        child,
                    }),
                    Err(e) => {
                        // Spawn failure consumes an attempt like any
                        // other crash: transient fork/exec pressure
                        // retries, a missing binary quarantines fast.
                        let attempt = p.attempt + 1;
                        if attempt > max_retries {
                            outcomes[p.shard] = Some((
                                attempt,
                                ShardOutcome::ShardQuarantined {
                                    last_status: format!("spawn failed: {e}"),
                                },
                            ));
                        } else {
                            pending.push(Pending {
                                shard: p.shard,
                                attempt,
                                ready_at: Instant::now() + relaunch_delay(p.shard, attempt),
                            });
                        }
                    }
                }
            }
        }

        if running.is_empty() && (pending.is_empty() || interrupted) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let shards = specs
        .iter()
        .zip(outcomes)
        .map(|(spec, o)| {
            let (attempts, outcome) = o.unwrap_or((0, ShardOutcome::Interrupted));
            ShardRun {
                spec: *spec,
                attempts,
                outcome,
            }
        })
        .collect();
    Ok(SupervisorReport {
        shards,
        interrupted,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut c = Command::new("sh");
        c.arg("-c").arg(script);
        c.stdout(std::process::Stdio::null());
        c.stderr(std::process::Stdio::null());
        c
    }

    #[test]
    fn clean_shards_finish_in_one_attempt() {
        let cancel = CancelToken::new();
        let report = run_supervisor(3, 2, 2, &cancel, |_, _| sh("exit 0")).unwrap();
        assert!(report.all_done());
        assert!(!report.interrupted);
        for s in &report.shards {
            assert_eq!(s.attempts, 1);
            assert_eq!(s.outcome, ShardOutcome::Done);
        }
    }

    #[test]
    fn crashing_shard_retries_then_quarantines_without_sinking_campaign() {
        let cancel = CancelToken::new();
        let report = run_supervisor(2, 2, 2, &cancel, |spec, _| {
            if spec.index == 0 {
                sh("exit 0")
            } else {
                sh("kill -9 $$")
            }
        })
        .unwrap();
        assert!(!report.interrupted);
        assert_eq!(report.shards[0].outcome, ShardOutcome::Done);
        let bad = &report.shards[1];
        assert_eq!(bad.attempts, 3, "first launch plus max_retries=2");
        match &bad.outcome {
            ShardOutcome::ShardQuarantined { last_status } => {
                assert!(
                    last_status.contains("signal 9"),
                    "unexpected status {last_status:?}"
                );
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(report.quarantined().count(), 1);
        assert!(!report.all_done());
    }

    #[test]
    fn flaky_shard_recovers_within_budget() {
        let dir = std::env::temp_dir().join(format!("lc-supervise-{}-flaky", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let marker = dir.join("tried");
        let script = format!(
            "if [ -e {m} ]; then exit 0; else touch {m}; exit 7; fi",
            m = marker.display()
        );
        let cancel = CancelToken::new();
        let report = run_supervisor(1, 1, 3, &cancel, |_, _| sh(&script)).unwrap();
        assert_eq!(report.shards[0].attempts, 2);
        assert_eq!(report.shards[0].outcome, ShardOutcome::Done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exit_five_counts_as_done_with_unit_quarantines() {
        let cancel = CancelToken::new();
        let report = run_supervisor(1, 1, 0, &cancel, |_, _| sh("exit 5")).unwrap();
        assert_eq!(report.shards[0].outcome, ShardOutcome::DoneQuarantinedUnits);
        assert!(report.all_done());
    }
}
