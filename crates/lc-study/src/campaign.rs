//! The measurement campaign: run the stage tree over every input, convert
//! kernel statistics to simulated runtimes for every (GPU, compiler,
//! opt-level) platform, and aggregate with the paper's protocol —
//! median of 3 runs per input, geometric mean across the 13 inputs (§5).

use lc_parallel::Pool;

use gpu_sim::{
    all_platforms, framework_time, stage_time, throughput_gbs, Direction, OptLevel, SimConfig,
};
use lc_data::{Scale, SpFile, SP_FILES};

use crate::runner::{run_stage, ChunkedData};
use crate::space::Space;

/// Campaign parameters.
#[derive(Clone)]
pub struct StudyConfig {
    /// The pipeline space to measure (full = the paper's 107,632).
    pub space: Space,
    /// Input scale (see `lc_data::Scale`).
    pub scale: Scale,
    /// Worker threads.
    pub threads: usize,
    /// Input files (default: all 13 of Table 3).
    pub files: Vec<&'static SpFile>,
    /// Optimization levels to simulate (`[O3]` for Figs. 2–13; `[O1, O3]`
    /// for Figs. 14/15).
    pub opt_levels: Vec<OptLevel>,
    /// Verify every chunk round-trip while measuring (slower; tests use it).
    pub verify: bool,
}

impl StudyConfig {
    /// The paper's full campaign at the default reduced input scale.
    pub fn paper(opt_levels: Vec<OptLevel>) -> Self {
        Self {
            space: Space::full(),
            scale: Scale::default_study(),
            threads: lc_parallel::default_threads(),
            files: SP_FILES.iter().collect(),
            opt_levels,
            verify: false,
        }
    }

    /// A small, fast configuration for tests and examples: a restricted
    /// family set, tiny inputs, and verification on.
    pub fn quick() -> Self {
        Self {
            space: Space::restricted_to_families(&["TCMS", "DIFF", "RLE", "RZE"]),
            scale: Scale::tiny(),
            threads: lc_parallel::default_threads(),
            files: vec![&SP_FILES[0], &SP_FILES[6], &SP_FILES[12]],
            opt_levels: vec![OptLevel::O3],
            verify: true,
        }
    }
}

/// Measured (simulated) throughputs for every pipeline on every platform.
pub struct Measurements {
    /// The measured space.
    pub space: Space,
    /// Platform configurations, in `opt_levels × all_platforms` order.
    pub configs: Vec<SimConfig>,
    /// Input file names.
    pub files: Vec<&'static str>,
    /// Encoding throughput in GB/s, flat-indexed `[config][pipeline]`
    /// (geometric mean across inputs of the median of 3 runs).
    enc: Vec<f64>,
    /// Decoding throughput, same layout.
    dec: Vec<f64>,
    /// Total uncompressed bytes across inputs (paper scale).
    total_uncompressed: u64,
    /// Per-pipeline compressed bytes summed across inputs (paper scale).
    compressed: Vec<u64>,
}

impl Measurements {
    fn slot(&self, config: usize, pipeline: usize) -> usize {
        config * self.space.len() + pipeline
    }

    /// Throughput of one pipeline on one platform.
    pub fn throughput(&self, config: usize, pipeline: usize, dir: Direction) -> f64 {
        let i = self.slot(config, pipeline);
        match dir {
            Direction::Encode => self.enc[i],
            Direction::Decode => self.dec[i],
        }
    }

    /// All throughputs for a platform, pipeline-indexed.
    pub fn series(&self, config: usize, dir: Direction) -> &[f64] {
        let p = self.space.len();
        let base = config * p;
        match dir {
            Direction::Encode => &self.enc[base..base + p],
            Direction::Decode => &self.dec[base..base + p],
        }
    }

    /// Throughputs of a pipeline subset on a platform.
    pub fn select(
        &self,
        config: usize,
        dir: Direction,
        ids: &[crate::space::PipelineId],
    ) -> Vec<f64> {
        ids.iter()
            .map(|&id| self.throughput(config, self.space.index(id), dir))
            .collect()
    }

    /// Compression ratio of a pipeline across the whole dataset
    /// (uncompressed / compressed, sizes summed over the input files —
    /// the dataset-level ratio a user of the compressor would see).
    pub fn ratio(&self, pipeline: usize) -> f64 {
        self.total_uncompressed as f64 / self.compressed[pipeline].max(1) as f64
    }

    /// Find a platform config by GPU name, compiler, and opt level.
    pub fn config_index(
        &self,
        gpu: &str,
        compiler: gpu_sim::CompilerId,
        opt: OptLevel,
    ) -> Option<usize> {
        self.configs
            .iter()
            .position(|c| c.gpu.name == gpu && c.compiler == compiler && c.opt == opt)
    }
}

/// splitmix64: cheap, well-mixed deterministic hash for run jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Simulate the paper's "run three times, keep the median" protocol:
/// apply three deterministic jitters of up to ±0.4% and take the median.
pub fn median_of_three_runs(t: f64, seed: u64) -> f64 {
    let mut eps = [0f64; 3];
    for (k, e) in eps.iter_mut().enumerate() {
        let h = splitmix64(seed ^ (k as u64).wrapping_mul(0xA24BAED4963EE407));
        *e = ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.008;
    }
    eps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    t * (1.0 + eps[1])
}

struct PlatformPre {
    fw_enc: f64,
    fw_dec: f64,
    inv_bw: f64,
}

/// Run the campaign.
pub fn run_campaign(sc: &StudyConfig) -> Measurements {
    assert!(!sc.files.is_empty(), "campaign needs at least one input file");
    assert!(!sc.opt_levels.is_empty(), "campaign needs at least one opt level");
    let pool = Pool::new(sc.threads);
    let configs: Vec<SimConfig> = sc
        .opt_levels
        .iter()
        .flat_map(|&o| all_platforms(o))
        .collect();
    let nc = sc.space.components.len();
    let nr = sc.space.reducers.len();
    let p_total = sc.space.len();
    let c_total = configs.len();
    let mut enc_log = vec![0f64; c_total * p_total];
    let mut dec_log = vec![0f64; c_total * p_total];
    let mut compressed = vec![0u64; p_total];
    let mut total_uncompressed = 0u64;

    for (file_i, file) in sc.files.iter().enumerate() {
        let data = lc_data::generate(file, sc.scale);
        let input = ChunkedData::from_bytes(&data);
        // Extrapolate to the paper's operating point: kernel counters are
        // extensive (per-byte-proportional), so measurements taken on the
        // reduced input scale to the full Table 3 file size. This keeps
        // kernel-launch overhead and occupancy at the paper's regime —
        // §5 notes every tested input fully occupies every tested GPU —
        // instead of letting fixed costs dominate tiny inputs.
        let measured_bytes = input.total_bytes();
        let paper_bytes = file.paper_size_tenth_mb as u64 * 100_000;
        let extrapolate = paper_bytes as f64 / measured_bytes as f64;
        let chunks = paper_bytes.div_ceil(lc_core::CHUNK_SIZE as u64);
        let unc = paper_bytes;
        let pre: Vec<PlatformPre> = configs
            .iter()
            .map(|cfg| PlatformPre {
                fw_enc: framework_time(cfg, Direction::Encode, chunks),
                fw_dec: framework_time(cfg, Direction::Decode, chunks),
                inv_bw: 1.0
                    / (cfg.gpu.mem_bandwidth_gbs * 1e9 * cfg.profile().memory_efficiency),
            })
            .collect();

        total_uncompressed += unc;
        // One task per stage-1 component; each owns the contiguous
        // pipeline-index range [i1·nc·nr, (i1+1)·nc·nr).
        let stride = nc * nr;
        let rows: Vec<(Vec<f64>, Vec<f64>, Vec<u64>)> = pool.map(nc, |i1| {
            let mut row_enc = vec![0f64; c_total * stride];
            let mut row_dec = vec![0f64; c_total * stride];
            let mut row_comp = vec![0u64; stride];
            let s1 = run_stage(sc.space.components[i1].as_ref(), &input, sc.verify);
            let (s1e, s1d) = (s1.enc.scaled(extrapolate), s1.dec.scaled(extrapolate));
            let st1: Vec<(f64, f64)> = configs
                .iter()
                .map(|cfg| (stage_time(cfg, &s1e, chunks), stage_time(cfg, &s1d, chunks)))
                .collect();
            for i2 in 0..nc {
                let s2 = run_stage(sc.space.components[i2].as_ref(), &s1.output, sc.verify);
                let (s2e, s2d) = (s2.enc.scaled(extrapolate), s2.dec.scaled(extrapolate));
                let st2: Vec<(f64, f64)> = configs
                    .iter()
                    .map(|cfg| (stage_time(cfg, &s2e, chunks), stage_time(cfg, &s2d, chunks)))
                    .collect();
                for ir in 0..nr {
                    let s3 = run_stage(sc.space.reducers[ir].as_ref(), &s2.output, sc.verify);
                    let (s3e, s3d) = (s3.enc.scaled(extrapolate), s3.dec.scaled(extrapolate));
                    let comp_bytes =
                        (s3.output.total_bytes() as f64 * extrapolate) as u64 + 5 * chunks;
                    let local = i2 * nr + ir;
                    row_comp[local] = comp_bytes;
                    let p_idx = i1 * stride + local;
                    for (c, cfg) in configs.iter().enumerate() {
                        let st3_enc = stage_time(cfg, &s3e, chunks);
                        let st3_dec = stage_time(cfg, &s3d, chunks);
                        // Roofline: in-SM work overlaps DRAM traffic; the
                        // slower of the two bounds the kernel (see
                        // gpu_sim::total_time).
                        let mem = (unc + comp_bytes) as f64 * pre[c].inv_bw;
                        let t_enc =
                            (st1[c].0 + st2[c].0 + st3_enc).max(mem) + pre[c].fw_enc;
                        let t_dec =
                            (st1[c].1 + st2[c].1 + st3_dec).max(mem) + pre[c].fw_dec;
                        let seed =
                            (file_i as u64) << 48 | (p_idx as u64) << 8 | c as u64;
                        let t_enc = median_of_three_runs(t_enc, splitmix64(seed));
                        let t_dec = median_of_three_runs(t_dec, splitmix64(seed ^ 0xDEC0));
                        row_enc[c * stride + local] =
                            throughput_gbs(unc, t_enc).max(f64::MIN_POSITIVE).ln();
                        row_dec[c * stride + local] =
                            throughput_gbs(unc, t_dec).max(f64::MIN_POSITIVE).ln();
                    }
                }
            }
            (row_enc, row_dec, row_comp)
        });

        for (i1, (row_enc, row_dec, row_comp)) in rows.into_iter().enumerate() {
            for c in 0..c_total {
                let dst = c * p_total + i1 * stride;
                for k in 0..stride {
                    enc_log[dst + k] += row_enc[c * stride + k];
                    dec_log[dst + k] += row_dec[c * stride + k];
                }
            }
            for k in 0..stride {
                compressed[i1 * stride + k] += row_comp[k];
            }
        }
    }

    let n_files = sc.files.len() as f64;
    let finish = |log: Vec<f64>| -> Vec<f64> {
        log.into_iter().map(|s| (s / n_files).exp()).collect()
    };
    Measurements {
        space: sc.space.clone(),
        configs,
        files: sc.files.iter().map(|f| f.name).collect(),
        enc: finish(enc_log),
        dec: finish(dec_log),
        total_uncompressed,
        compressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::CompilerId;

    fn quick_measurements() -> Measurements {
        run_campaign(&StudyConfig::quick())
    }

    #[test]
    fn campaign_produces_positive_throughputs() {
        let m = quick_measurements();
        assert_eq!(m.configs.len(), 11);
        assert_eq!(m.space.len(), 16 * 16 * 8);
        for c in 0..m.configs.len() {
            for dir in [Direction::Encode, Direction::Decode] {
                for &v in m.series(c, dir) {
                    assert!(v > 0.0 && v.is_finite(), "{v}");
                }
            }
        }
    }

    #[test]
    fn decode_is_generally_faster_than_encode() {
        // Paper §6.1: decoding throughputs are generally higher.
        let m = quick_measurements();
        let c = m
            .config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3)
            .unwrap();
        let enc_med = crate::stats::median(m.series(c, Direction::Encode));
        let dec_med = crate::stats::median(m.series(c, Direction::Decode));
        assert!(
            dec_med > enc_med,
            "decode median {dec_med} vs encode median {enc_med}"
        );
    }

    #[test]
    fn clang_encode_slower_decode_faster() {
        let m = quick_measurements();
        let nv = m.config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3).unwrap();
        let cl = m.config_index("RTX 4090", CompilerId::Clang, OptLevel::O3).unwrap();
        let enc_nv = crate::stats::median(m.series(nv, Direction::Encode));
        let enc_cl = crate::stats::median(m.series(cl, Direction::Encode));
        let dec_nv = crate::stats::median(m.series(nv, Direction::Decode));
        let dec_cl = crate::stats::median(m.series(cl, Direction::Decode));
        assert!(enc_cl < enc_nv, "Clang encode {enc_cl} vs NVCC {enc_nv}");
        assert!(dec_cl > dec_nv, "Clang decode {dec_cl} vs NVCC {dec_nv}");
    }

    #[test]
    fn nvcc_hipcc_close_on_nvidia() {
        let m = quick_measurements();
        let nv = m.config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3).unwrap();
        let hip = m.config_index("RTX 4090", CompilerId::Hipcc, OptLevel::O3).unwrap();
        let a = crate::stats::median(m.series(nv, Direction::Encode));
        let b = crate::stats::median(m.series(hip, Direction::Encode));
        assert!((a / b - 1.0).abs() < 0.03, "{a} vs {b}");
    }

    #[test]
    fn gpu_staircase() {
        let m = quick_measurements();
        let titan = m.config_index("TITAN V", CompilerId::Nvcc, OptLevel::O3).unwrap();
        let ti = m.config_index("RTX 3080 Ti", CompilerId::Nvcc, OptLevel::O3).unwrap();
        let k90 = m.config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3).unwrap();
        let med = |c| crate::stats::median(m.series(c, Direction::Encode));
        assert!(med(titan) < med(ti), "TITAN V < 3080 Ti");
        assert!(med(ti) < med(k90), "3080 Ti < 4090");
    }

    #[test]
    fn median_of_three_runs_is_deterministic_and_small() {
        let a = median_of_three_runs(1.0, 42);
        let b = median_of_three_runs(1.0, 42);
        assert_eq!(a, b);
        assert!((a - 1.0).abs() < 0.005);
        let c = median_of_three_runs(1.0, 43);
        assert_ne!(a, c, "different seeds give different jitter");
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_files_rejected() {
        let mut sc = StudyConfig::quick();
        sc.files.clear();
        run_campaign(&sc);
    }
}
