//! The measurement campaign: run the stage tree over every input, convert
//! kernel statistics to simulated runtimes for every (GPU, compiler,
//! opt-level) platform, and aggregate with the paper's protocol —
//! median of 3 runs per input, geometric mean across the 13 inputs (§5).
//!
//! # Fault tolerance
//!
//! A campaign is hours of compute at paper scale; [`run_campaign_with`]
//! makes it restartable and fault-isolated:
//!
//! * **Checkpoint/resume** — with [`CampaignOptions::journal`] set, every
//!   completed work unit (one `(input file, stage-1 component)` pair,
//!   i.e. one task of the stage-tree fan-out) is appended to a JSON-lines
//!   journal as soon as it finishes. With [`CampaignOptions::resume`],
//!   units already in the journal are loaded instead of recomputed. The
//!   journal stores the exact `f64` bits (shortest-round-trip formatting)
//!   and the accumulation order is fixed, so a resumed campaign produces
//!   **byte-identical** reports to an uninterrupted one.
//! * **Panic isolation & quarantine** — with [`CampaignOptions::isolate`],
//!   each stage executes behind a `catch_unwind` fence with a cooperative
//!   monotonic-deadline watchdog ([`crate::runner::run_stage_checked`]).
//!   A work unit that panics or overruns [`CampaignOptions::unit_deadline`]
//!   is recorded as a [`QuarantineEntry`] (with a stage trace pinpointing
//!   where it died) and the campaign continues; the pipelines covered by
//!   a quarantined unit keep zero contributions and must be interpreted
//!   via [`CampaignOutcome::quarantined`].
//! * **Crash consistency & interruption** — journal appends are single-
//!   buffer crash-consistent writes ([`lc_chaos::fs::DurableFile`]) under
//!   a [`SyncPolicy`]; the journal is fsynced at each completed input
//!   file and at campaign end. A [`CampaignOptions::cancel`] token
//!   (SIGINT/SIGTERM via `reproduce`) stops workers cooperatively at the
//!   next unit boundary, checkpoints, and returns with
//!   [`CampaignOutcome::interrupted`] set — every completed unit is
//!   already journaled, so the run is resumable.
//! * **Memory governance** — [`CampaignOptions::mem_budget_mb`] caps the
//!   worker count (degrading to serial under pressure) and makes the
//!   prefix cache shed insertions once global residency crosses half the
//!   budget. Sweep results are bit-identical either way; only speed
//!   changes.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lc_chaos::fs::SyncPolicy;
use lc_json::Value;
use lc_parallel::{CancelToken, Pool};

use gpu_sim::{
    all_platforms, framework_time, stage_time, throughput_gbs, Direction, OptLevel, SimConfig,
};
use lc_data::{Scale, SpFile, SP_FILES};

use crate::journal::{self, JournalWriter};
use crate::prefix::{CacheReport, CacheStats, PrefixEntry, SweepMode, UnitPrefixCache};
use crate::progress::Heartbeat;
use crate::prune::{PruneMode, PrunePlan, PruneReport};
use crate::runner::{run_stage_checked, ChunkedData, StageFault, Watchdog};
use crate::space::Space;

/// Campaign parameters.
#[derive(Clone)]
pub struct StudyConfig {
    /// The pipeline space to measure (full = the paper's 107,632).
    pub space: Space,
    /// Input scale (see `lc_data::Scale`).
    pub scale: Scale,
    /// Worker threads.
    pub threads: usize,
    /// Input files (default: all 13 of Table 3).
    pub files: Vec<&'static SpFile>,
    /// Optimization levels to simulate (`[O3]` for Figs. 2–13; `[O1, O3]`
    /// for Figs. 14/15).
    pub opt_levels: Vec<OptLevel>,
    /// Verify every chunk round-trip while measuring (slower; tests use it).
    pub verify: bool,
}

impl StudyConfig {
    /// The paper's full campaign at the default reduced input scale.
    pub fn paper(opt_levels: Vec<OptLevel>) -> Self {
        Self {
            space: Space::full(),
            scale: Scale::default_study(),
            threads: lc_parallel::default_threads(),
            files: SP_FILES.iter().collect(),
            opt_levels,
            verify: false,
        }
    }

    /// A small, fast configuration for tests and examples: a restricted
    /// family set, tiny inputs, and verification on.
    pub fn quick() -> Self {
        Self {
            space: Space::restricted_to_families(&["TCMS", "DIFF", "RLE", "RZE"]),
            scale: Scale::tiny(),
            threads: lc_parallel::default_threads(),
            files: vec![&SP_FILES[0], &SP_FILES[6], &SP_FILES[12]],
            opt_levels: vec![OptLevel::O3],
            verify: true,
        }
    }
}

/// Measured (simulated) throughputs for every pipeline on every platform.
pub struct Measurements {
    /// The measured space.
    pub space: Space,
    /// Platform configurations, in `opt_levels × all_platforms` order.
    pub configs: Vec<SimConfig>,
    /// Input file names.
    pub files: Vec<&'static str>,
    /// Encoding throughput in GB/s, flat-indexed `[config][pipeline]`
    /// (geometric mean across inputs of the median of 3 runs).
    enc: Vec<f64>,
    /// Decoding throughput, same layout.
    dec: Vec<f64>,
    /// Total uncompressed bytes across inputs (paper scale).
    total_uncompressed: u64,
    /// Per-pipeline compressed bytes summed across inputs (paper scale).
    compressed: Vec<u64>,
}

impl Measurements {
    fn slot(&self, config: usize, pipeline: usize) -> usize {
        config * self.space.len() + pipeline
    }

    /// Throughput of one pipeline on one platform.
    pub fn throughput(&self, config: usize, pipeline: usize, dir: Direction) -> f64 {
        let i = self.slot(config, pipeline);
        match dir {
            Direction::Encode => self.enc[i],
            Direction::Decode => self.dec[i],
        }
    }

    /// All throughputs for a platform, pipeline-indexed.
    pub fn series(&self, config: usize, dir: Direction) -> &[f64] {
        let p = self.space.len();
        let base = config * p;
        match dir {
            Direction::Encode => &self.enc[base..base + p],
            Direction::Decode => &self.dec[base..base + p],
        }
    }

    /// Throughputs of a pipeline subset on a platform.
    pub fn select(
        &self,
        config: usize,
        dir: Direction,
        ids: &[crate::space::PipelineId],
    ) -> Vec<f64> {
        ids.iter()
            .map(|&id| self.throughput(config, self.space.index(id), dir))
            .collect()
    }

    /// Compression ratio of a pipeline across the whole dataset
    /// (uncompressed / compressed, sizes summed over the input files —
    /// the dataset-level ratio a user of the compressor would see).
    pub fn ratio(&self, pipeline: usize) -> f64 {
        self.total_uncompressed as f64 / self.compressed[pipeline].max(1) as f64
    }

    /// Find a platform config by GPU name, compiler, and opt level.
    pub fn config_index(
        &self,
        gpu: &str,
        compiler: gpu_sim::CompilerId,
        opt: OptLevel,
    ) -> Option<usize> {
        self.configs
            .iter()
            .position(|c| c.gpu.name == gpu && c.compiler == compiler && c.opt == opt)
    }
}

/// splitmix64: cheap, well-mixed deterministic hash for run jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Simulate the paper's "run three times, keep the median" protocol:
/// apply three deterministic jitters of up to ±0.4% and take the median.
pub fn median_of_three_runs(t: f64, seed: u64) -> f64 {
    let mut eps = [0f64; 3];
    for (k, e) in eps.iter_mut().enumerate() {
        let h = splitmix64(seed ^ (k as u64).wrapping_mul(0xA24BAED4963EE407));
        *e = ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.008;
    }
    eps.sort_by(|a, b| a.partial_cmp(b).unwrap()); // invariant: eps values are finite
    t * (1.0 + eps[1])
}

struct PlatformPre {
    fw_enc: f64,
    fw_dec: f64,
    inv_bw: f64,
}

/// Fault-tolerance options for [`run_campaign_with`].
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Journal path. `Some` enables checkpointing: every finished work
    /// unit is appended (and flushed) immediately.
    pub journal: Option<PathBuf>,
    /// Skip work units already present in the journal. Requires
    /// [`CampaignOptions::journal`]; the journal's fingerprint must match
    /// this campaign's configuration exactly.
    pub resume: bool,
    /// Cooperative per-unit deadline. A unit still running past this
    /// budget is quarantined at the next stage boundary.
    pub unit_deadline: Option<Duration>,
    /// Quarantine panicking/overtime units and continue instead of
    /// propagating the failure. Off by default so [`run_campaign`] keeps
    /// its historical fail-fast behavior.
    pub isolate: bool,
    /// Emit a progress line to stderr at this interval (units done,
    /// units/s, ETA, quarantine count). `None` disables the heartbeat.
    pub heartbeat: Option<Duration>,
    /// How to walk each unit's pipeline range: prefix-memoized (the
    /// default) or naive per-pipeline recomputation. Both produce
    /// bit-identical measurements; see [`crate::prefix`].
    pub sweep: SweepMode,
    /// Whether to statically deduplicate provably-equivalent pipelines
    /// before the sweep (on by default; see [`crate::prune`]). Unlike
    /// `sweep`, this changes journaled rows — pruned slots are written
    /// as zeros and filled from their representative at aggregation —
    /// so the mode is part of the journal resume fingerprint.
    pub prune: PruneMode,
    /// When the journal issues `fsync`: never, at checkpoints (default),
    /// or after every record. Informational only — not part of the
    /// resume fingerprint, so a campaign may be resumed under a
    /// different policy than it started with.
    pub fsync: SyncPolicy,
    /// Soft memory budget in MiB. Caps the per-file worker count (a
    /// file whose working set would overflow the budget runs with fewer
    /// workers, down to serial) and sheds prefix-cache insertions once
    /// the cache's global residency crosses half the budget. Purely a
    /// resource governor: measurements are bit-identical with or
    /// without it.
    pub mem_budget_mb: Option<usize>,
    /// Cooperative cancellation (SIGINT/SIGTERM in `reproduce`).
    /// When the token trips, workers stop claiming new units, the
    /// journal is checkpointed, and the campaign returns early with
    /// [`CampaignOutcome::interrupted`] set.
    pub cancel: Option<CancelToken>,
    /// Run only the work units this shard owns (round-robin over the
    /// global unit index `file_i * nc + i1`; see [`crate::shard`]).
    /// The journal meta gains a `"shard": "K/N"` field so a shard
    /// journal can be neither resumed under the wrong identity nor
    /// merged into the wrong campaign. Unowned units contribute
    /// nothing: a sharded outcome's measurements are partial by design
    /// and only meaningful after [`crate::shard::merge_shards`].
    pub shard: Option<crate::shard::ShardSpec>,
}

/// Wall-clock timing of one work unit, recorded for every unit (healthy
/// or quarantined) and attached to its journal record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitTiming {
    /// Total wall time of the unit in milliseconds.
    pub elapsed_ms: u64,
    /// Accumulated milliseconds per stage position (s1, s2, s3). For a
    /// quarantined unit the failing stage's partial time is included.
    pub stage_ms: [u64; 3],
}

/// Why a work unit was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// A stage panicked; the payload message is preserved.
    Panic(String),
    /// The unit exceeded its watchdog deadline.
    DeadlineExceeded {
        /// Elapsed milliseconds when the expiry was observed.
        elapsed_ms: u64,
        /// The configured budget in milliseconds.
        limit_ms: u64,
    },
}

/// One quarantined work unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Input file name.
    pub file: String,
    /// Index of the file in the campaign's file list.
    pub file_index: usize,
    /// Stage-1 component name (the work-unit key's second half).
    pub component: String,
    /// Index of that component in the space.
    pub s1_index: usize,
    /// What went wrong.
    pub reason: QuarantineReason,
    /// Which stages were executing when the unit died, e.g.
    /// `"s1=TCMS_4 s2=DIFF_4 s3=RZE_4"`.
    pub stage_trace: String,
    /// How long the unit ran before dying, and where the time went.
    pub timing: UnitTiming,
}

/// Result of [`run_campaign_with`].
pub struct CampaignOutcome {
    /// The measurements (pipelines covered by quarantined units carry
    /// zero contributions — consult [`CampaignOutcome::quarantined`]).
    pub measurements: Measurements,
    /// Quarantined work units, sorted by (file, stage-1 component).
    pub quarantined: Vec<QuarantineEntry>,
    /// Work units loaded from the journal instead of recomputed.
    pub resumed_units: usize,
    /// Work units actually executed this run (including quarantined).
    pub executed_units: usize,
    /// Prefix-cache totals for the run (all zeros when nothing executed;
    /// in naive mode every lookup is a miss).
    pub cache: CacheReport,
    /// Contract-driven pruning summary: which part of the enumeration
    /// was proven redundant and copied instead of measured.
    pub prune: PruneReport,
    /// True when a [`CampaignOptions::cancel`] token stopped the run
    /// before all units executed. The journal holds every completed
    /// unit (checkpointed), so the campaign is resumable; the
    /// measurements in this outcome are partial and must not be
    /// reported as final.
    pub interrupted: bool,
}

type UnitRows = (Vec<f64>, Vec<f64>, Vec<u64>);

/// Per-file context shared by all of that file's work units.
struct FileCtx<'a> {
    configs: &'a [SimConfig],
    pre: &'a [PlatformPre],
    input: &'a ChunkedData,
    extrapolate: f64,
    chunks: u64,
    unc: u64,
    file_i: usize,
}

/// Run the campaign with default options (no journal, fail-fast).
pub fn run_campaign(sc: &StudyConfig) -> Measurements {
    run_campaign_with(sc, &CampaignOptions::default())
        .expect("campaign without journal cannot fail recoverably") // invariant: no journal => no recoverable error
        .measurements
}

/// Run the campaign with checkpoint/resume and quarantine support.
///
/// Errors are reserved for journal problems (I/O failures, fingerprint
/// mismatch on resume, corrupt journal); measurement faults either
/// propagate as panics (`isolate: false`) or land in
/// [`CampaignOutcome::quarantined`] (`isolate: true`).
///
/// # Panics
///
/// Panics if `sc` has no files or no opt levels, or (with
/// `isolate: false`) if a work unit panics or overruns its deadline.
pub fn run_campaign_with(
    sc: &StudyConfig,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, String> {
    assert!(
        !sc.files.is_empty(),
        "campaign needs at least one input file"
    );
    assert!(
        !sc.opt_levels.is_empty(),
        "campaign needs at least one opt level"
    );
    let configs: Vec<SimConfig> = sc
        .opt_levels
        .iter()
        .flat_map(|&o| all_platforms(o))
        .collect();
    let nc = sc.space.components.len();
    let nr = sc.space.reducers.len();
    let stride = nc * nr;
    let p_total = sc.space.len();
    let c_total = configs.len();
    let cache_stats = CacheStats::default();

    // Contract-driven dedup: enumerate the provably-commuting stage
    // pairs (commute mode) or the abstract interpreter's certified
    // equivalence classes (canonical mode) once, before any unit runs.
    // With PruneMode::Off the plan is empty and the sweep is the
    // paper's full enumeration. Computed before the journal meta: in
    // canonical mode the class-map fingerprint is part of the resume
    // fingerprint.
    let plan = PrunePlan::for_space(&sc.space, opts.prune);
    // The dataset digest list costs one generation pass over the input
    // files, so it is only computed when a journal will actually carry
    // the fingerprint.
    let meta = journal_meta(
        sc,
        c_total,
        &opts.sweep,
        &plan,
        opts.shard.as_ref(),
        opts.journal.is_some(),
    );
    // Shard ownership of a global work-unit index; `None` owns all.
    let owns = |fi: usize, i1: usize| {
        opts.shard
            .is_none_or(|s| s.owns(crate::shard::unit_index(fi, i1, nc)))
    };
    if lc_telemetry::enabled() {
        lc_telemetry::counter("campaign.analyze.commuting_pairs").add(plan.dups.len() as u64);
        lc_telemetry::counter("campaign.analyze.pruned_pipelines")
            .add(plan.pruned_pipelines(nr) as u64);
        lc_telemetry::counter("campaign.analyze.classes").add(plan.classes as u64);
        lc_telemetry::counter("campaign.analyze.plan_us").add(plan.analysis.as_micros() as u64);
    }

    // Resume: load prior units and quarantine records, keyed by
    // (file index, stage-1 index).
    let mut prior_units: HashMap<(usize, usize), UnitRows> = HashMap::new();
    let mut prior_quarantine: HashMap<(usize, usize), QuarantineEntry> = HashMap::new();
    let mut journal_valid_len: Option<u64> = None;
    if opts.resume {
        let path = opts
            .journal
            .as_ref()
            .ok_or_else(|| "resume requires a journal path".to_string())?;
        if path.exists() && journal::effectively_empty(path)? {
            // Crash during the very first append: the whole file is one
            // torn line (or empty). Nothing valid to resume from — not
            // even a fingerprint — so recreate instead of failing.
            eprintln!(
                "warning: journal {} holds no complete record (crash during the first \
                 append) — starting fresh",
                path.display()
            );
        } else if path.exists() {
            let j = journal::load(path)?;
            if j.torn_bytes > 0 {
                // The expected artifact of a kill mid-append: a partial
                // final record. Not an error — truncate and re-run that
                // unit. Corruption anywhere else already failed `load`.
                eprintln!(
                    "warning: journal {} ends in a torn record ({} bytes past the last \
                     complete line) — truncating; the interrupted unit will be re-run",
                    path.display(),
                    j.torn_bytes
                );
            }
            // Cross-prune-mode resume gets a structured refusal naming
            // both modes: pruned rows are journaled as zeros, so mixing
            // modes would silently corrupt the pruned slots.
            let j_prune = j
                .meta
                .get("prune")
                .and_then(|v| v.as_str())
                .unwrap_or(PruneMode::Off.label());
            if j_prune != opts.prune.label() {
                return Err(format!(
                    "journal {} was written under prune mode \"{}\" but this campaign \
                     uses \"{}\"; pruned rows are journaled as zeros, so resuming \
                     across prune modes would corrupt results — rerun with the \
                     journal's mode or start a fresh journal",
                    path.display(),
                    j_prune,
                    opts.prune.label()
                ));
            }
            // Shard identity gets its own refusal: resuming shard 2/4's
            // journal as shard 3/4 (or as a whole campaign) would treat
            // another shard's units as already-done and silently skip
            // work this process owns.
            let j_shard = j.meta.get("shard").and_then(|v| v.as_str());
            let our_shard = opts.shard.map(|s| s.meta_label());
            if j_shard != our_shard.as_deref() {
                return Err(format!(
                    "journal {} belongs to {} but this campaign is {}; resuming \
                     across shard identities would skip or duplicate work units — \
                     use the matching --shard (or --merge to fuse a complete \
                     shard set)",
                    path.display(),
                    j_shard
                        .map(|s| format!("shard {s}"))
                        .unwrap_or_else(|| "the whole campaign (no shard)".to_string()),
                    our_shard
                        .map(|s| format!("shard {s}"))
                        .unwrap_or_else(|| "the whole campaign (no shard)".to_string()),
                ));
            }
            // Dataset digests get their own refusal naming the first
            // differing input, so a journal from a different dataset is
            // an operator-actionable error instead of a generic
            // fingerprint mismatch.
            let (jd, md) = (
                j.meta.get("dataset").and_then(Value::as_array),
                meta.get("dataset").and_then(Value::as_array),
            );
            if jd != md {
                let detail = crate::shard::first_dataset_difference(jd, md)
                    .unwrap_or_else(|| "dataset digest lists differ".to_string());
                return Err(format!(
                    "journal {} was written against different input data: {detail}; \
                     resuming would mix measurements from two datasets",
                    path.display()
                ));
            }
            if strip_informational(&j.meta) != strip_informational(&meta) {
                return Err(format!(
                    "journal {} was written by a different campaign configuration \
                     (space, files, scale, opt levels, or verify flag differ); \
                     refusing to resume from it",
                    path.display()
                ));
            }
            for u in &j.units {
                let (key, rows) = unit_from_value(u, c_total, stride)?;
                prior_units.insert(key, rows);
            }
            for q in &j.quarantined {
                let entry = quarantine_from_value(q)?;
                prior_quarantine.insert((entry.file_index, entry.s1_index), entry);
            }
            journal_valid_len = Some(j.valid_len);
        }
    }
    let writer: Option<JournalWriter> = match (&opts.journal, journal_valid_len) {
        (Some(path), Some(len)) => Some(JournalWriter::resume(path, len, opts.fsync)?),
        (Some(path), None) => Some(JournalWriter::create(path, &meta, opts.fsync)?),
        (None, _) => None,
    };

    let resumed_units = prior_units.len();
    let mut executed_units = 0usize;
    // Units this run will actually execute, known upfront from the prior
    // maps — the heartbeat's denominator.
    let planned: usize = (0..sc.files.len())
        .map(|fi| {
            (0..nc)
                .filter(|i1| {
                    owns(fi, *i1)
                        && !prior_units.contains_key(&(fi, *i1))
                        && !prior_quarantine.contains_key(&(fi, *i1))
                })
                .count()
        })
        .sum();
    let heartbeat = opts.heartbeat.map(|iv| Heartbeat::start(planned, iv));
    let heartbeat = heartbeat.as_ref();
    let mut quarantined: Vec<QuarantineEntry> = prior_quarantine.values().cloned().collect();

    // Soft memory budget: half for the prefix cache (the shed limit),
    // the rest for per-worker working sets.
    let budget_bytes = opts.mem_budget_mb.map(|mb| (mb as u64) << 20);
    let shed_limit = budget_bytes.map(|b| b / 2);
    let mut interrupted = false;

    let mut enc_log = vec![0f64; c_total * p_total];
    let mut dec_log = vec![0f64; c_total * p_total];
    let mut compressed = vec![0u64; p_total];
    let mut total_uncompressed = 0u64;

    for (file_i, file) in sc.files.iter().enumerate() {
        let data = lc_data::generate(file, sc.scale);
        let input = ChunkedData::from_bytes(&data);
        // Extrapolate to the paper's operating point: kernel counters are
        // extensive (per-byte-proportional), so measurements taken on the
        // reduced input scale to the full Table 3 file size. This keeps
        // kernel-launch overhead and occupancy at the paper's regime —
        // §5 notes every tested input fully occupies every tested GPU —
        // instead of letting fixed costs dominate tiny inputs.
        let measured_bytes = input.total_bytes();
        // Memory governor: a work unit holds the input plus stage
        // outputs and scratch arenas — conservatively ~8× the measured
        // input bytes. Run only as many workers as fit in the half of
        // the budget not reserved for the prefix cache, degrading to
        // serial rather than failing.
        let workers = match budget_bytes {
            Some(budget) => {
                let est_unit = measured_bytes.saturating_mul(8).max(1);
                let fit = ((budget / 2) / est_unit).max(1) as usize;
                let w = sc.threads.min(fit).max(1);
                if w < sc.threads && lc_telemetry::enabled() {
                    lc_telemetry::counter("campaign.mem.shed_workers").add((sc.threads - w) as u64);
                }
                w
            }
            None => sc.threads,
        };
        let pool = Pool::new(workers);
        let paper_bytes = file.paper_size_tenth_mb as u64 * 100_000;
        let extrapolate = paper_bytes as f64 / measured_bytes as f64;
        let chunks = paper_bytes.div_ceil(lc_core::CHUNK_SIZE as u64);
        let unc = paper_bytes;
        let pre: Vec<PlatformPre> = configs
            .iter()
            .map(|cfg| PlatformPre {
                fw_enc: framework_time(cfg, Direction::Encode, chunks),
                fw_dec: framework_time(cfg, Direction::Decode, chunks),
                inv_bw: 1.0 / (cfg.gpu.mem_bandwidth_gbs * 1e9 * cfg.profile().memory_efficiency),
            })
            .collect();
        total_uncompressed += unc;

        let ctx = FileCtx {
            configs: &configs,
            pre: &pre,
            input: &input,
            extrapolate,
            chunks,
            unc,
            file_i,
        };

        // One task per stage-1 component; each owns the contiguous
        // pipeline-index range [i1·nc·nr, (i1+1)·nc·nr). Units already in
        // the journal (measured or quarantined) are not re-run.
        let pending: Vec<usize> = (0..nc)
            .filter(|i1| {
                owns(file_i, *i1)
                    && !prior_units.contains_key(&(file_i, *i1))
                    && !prior_quarantine.contains_key(&(file_i, *i1))
            })
            .collect();

        let journal_err: Mutex<Option<String>> = Mutex::new(None);
        let record_err = |e: String| {
            journal_err
                .lock()
                .expect("journal error mutex") // invariant: holders never panic
                .get_or_insert(e);
        };
        // The Err variant is boxed: quarantine is the cold path, and the
        // entry (with its timing and trace) dwarfs the Ok rows pointer.
        let work = |k: usize| -> Result<UnitRows, Box<QuarantineEntry>> {
            let i1 = pending[k];
            let s1_name = sc.space.components[i1].name();
            let mut unit_span = lc_telemetry::span_in!(
                "campaign",
                "unit",
                file = file.name,
                s1 = s1_name,
                s1_index = i1,
            );
            let watchdog = opts.unit_deadline.map(Watchdog::new);
            let unit_start = Instant::now();
            let mut stage_ns = [0u64; 3];
            let result = run_unit(
                sc,
                &ctx,
                i1,
                watchdog.as_ref(),
                &mut stage_ns,
                &opts.sweep,
                &cache_stats,
                &plan,
                workers,
                shed_limit,
            );
            let timing = UnitTiming {
                elapsed_ms: unit_start.elapsed().as_millis() as u64,
                stage_ms: stage_ns.map(|n| n / 1_000_000),
            };
            unit_span.arg("elapsed_ms", timing.elapsed_ms);
            unit_span.arg("ok", result.is_ok());
            let out = match result {
                Ok(rows) => {
                    if let Some(w) = &writer {
                        let v = unit_value(file_i, file.name, i1, &sc.space, &rows, timing);
                        if let Err(e) = w.append(&v) {
                            record_err(e);
                        }
                    }
                    Ok(rows)
                }
                Err((fault, stage_trace)) => {
                    // Black-box breadcrumb: quarantines are exactly the
                    // events a post-mortem wants, so they always land in
                    // the flight recorder when it is armed.
                    lc_telemetry::flight::note(
                        "campaign.quarantine",
                        &[("file", file_i as u64), ("s1", i1 as u64)],
                    );
                    let entry = QuarantineEntry {
                        file: file.name.to_string(),
                        file_index: file_i,
                        component: s1_name.to_string(),
                        s1_index: i1,
                        reason: match fault {
                            StageFault::Panic(msg) => QuarantineReason::Panic(msg),
                            StageFault::DeadlineExceeded {
                                elapsed_ms,
                                limit_ms,
                            } => QuarantineReason::DeadlineExceeded {
                                elapsed_ms,
                                limit_ms,
                            },
                        },
                        stage_trace,
                        timing,
                    };
                    if let Some(w) = &writer {
                        if let Err(e) = w.append(&quarantine_value(&entry)) {
                            record_err(e);
                        }
                    }
                    if let Some(hb) = heartbeat {
                        hb.unit_quarantined();
                    }
                    Err(Box::new(entry))
                }
            };
            if let Some(hb) = heartbeat {
                hb.unit_done();
            }
            // Chaos: seeded SIGKILL at the unit boundary (supervisor
            // soak). Consulted strictly *after* this unit's journal
            // append, so every attempt makes durable progress and the
            // supervisor's retry-with-resume loop must converge in at
            // most (owned units + 1) launches. One relaxed load when no
            // plan is installed.
            if lc_chaos::kill_requested() {
                lc_parallel::raise_sigkill();
            }
            out
        };
        // With a cancel token, workers stop claiming at the next unit
        // boundary and unclaimed slots come back `None` — those units
        // were neither executed nor journaled and simply rerun on
        // resume. Without a token the fan-out is the historical
        // drain-everything map.
        let computed: Vec<Option<Result<UnitRows, Box<QuarantineEntry>>>> = match &opts.cancel {
            Some(token) => pool.map_cancellable(pending.len(), token, work),
            None => pool
                .map(pending.len(), work)
                .into_iter()
                .map(Some)
                .collect(),
        };
        executed_units += computed.iter().filter(|r| r.is_some()).count();
        // invariant: holders never panic
        if let Some(e) = journal_err.into_inner().expect("journal error mutex") {
            return Err(e);
        }
        // Per-file durability barrier: everything this file journaled is
        // on disk before the next file starts (under `--fsync never`
        // this is a no-op).
        if let Some(w) = &writer {
            w.checkpoint()?;
        }

        // Assemble this file's rows in stage-1 order: journaled units
        // slot in exactly where a live computation would have.
        let mut unit_of: Vec<Option<UnitRows>> = Vec::new();
        unit_of.resize_with(nc, || None);
        for (k, res) in computed.into_iter().enumerate() {
            match res {
                None => {} // cancelled before this unit was claimed
                Some(Ok(rows)) => unit_of[pending[k]] = Some(rows),
                Some(Err(entry)) => {
                    if !opts.isolate {
                        panic!(
                            "campaign unit file={} s1={} failed ({}): {}",
                            entry.file,
                            entry.component,
                            entry.stage_trace,
                            match &entry.reason {
                                QuarantineReason::Panic(m) => m.clone(),
                                QuarantineReason::DeadlineExceeded {
                                    elapsed_ms,
                                    limit_ms,
                                } => format!("deadline: {elapsed_ms} ms of {limit_ms} ms"),
                            }
                        );
                    }
                    quarantined.push(*entry);
                }
            }
        }
        for (i1, slot) in unit_of.iter_mut().enumerate() {
            if let Some(rows) = prior_units.remove(&(file_i, i1)) {
                *slot = Some(rows);
            }
        }

        // Sequential accumulation in fixed (file, i1) order: floating-
        // point addition order is identical whether a unit was computed
        // or journaled — this is what makes resume byte-identical.
        for (i1, maybe) in unit_of.into_iter().enumerate() {
            let Some((row_enc, row_dec, row_comp)) = maybe else {
                continue; // quarantined: contributes nothing
            };
            for c in 0..c_total {
                let dst = c * p_total + i1 * stride;
                for k in 0..stride {
                    enc_log[dst + k] += row_enc[c * stride + k];
                    dec_log[dst + k] += row_dec[c * stride + k];
                }
            }
            for k in 0..stride {
                compressed[i1 * stride + k] += row_comp[k];
            }
        }

        if opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            // Everything completed so far is journaled and checkpointed;
            // stop claiming files and hand back a resumable state.
            interrupted = true;
            break;
        }
    }

    // Final durability barrier: an uninterrupted campaign's journal is
    // fully on disk before the caller writes derived artifacts.
    if let Some(w) = &writer {
        w.checkpoint()?;
    }

    // Fill pruned slots from their representatives. The commutation
    // proof (Contract::commutes_with, differentially validated in
    // lc-analyze) guarantees both stage orders produce identical
    // composed outputs and length-only kernel statistics, so the
    // representative's accumulated sums *are* the pruned pipeline's
    // numbers — modulo the per-pipeline jitter seed, whose run-to-run
    // noise the pruned slot inherits from its representative.
    for dup in &plan.dups {
        let (pj, pi) = dup.pruned;
        let (ri, rj) = dup.representative;
        for r in 0..nr {
            let p = (pj * nc + pi) * nr + r;
            let q = (ri * nc + rj) * nr + r;
            for c in 0..c_total {
                enc_log[c * p_total + p] = enc_log[c * p_total + q];
                dec_log[c * p_total + p] = dec_log[c * p_total + q];
            }
            compressed[p] = compressed[q];
        }
    }

    // Canonical mode: fill each certified class member from its class
    // representative. The certificate (checked by lc-analyze's absint
    // checker) guarantees identical reducer output sizes on every
    // input, so the compressed bytes are exact; the throughput numbers
    // are the representative's — pattern-tier members may genuinely
    // time differently, which is the mode's documented trade-off.
    for cd in &plan.cell_dups {
        for c in 0..c_total {
            enc_log[c * p_total + cd.pruned] = enc_log[c * p_total + cd.representative];
            dec_log[c * p_total + cd.pruned] = dec_log[c * p_total + cd.representative];
        }
        compressed[cd.pruned] = compressed[cd.representative];
    }

    let n_files = sc.files.len() as f64;
    let finish =
        |log: Vec<f64>| -> Vec<f64> { log.into_iter().map(|s| (s / n_files).exp()).collect() };
    quarantined.sort_by_key(|q| (q.file_index, q.s1_index));
    Ok(CampaignOutcome {
        measurements: Measurements {
            space: sc.space.clone(),
            configs,
            files: sc.files.iter().map(|f| f.name).collect(),
            enc: finish(enc_log),
            dec: finish(dec_log),
            total_uncompressed,
            compressed,
        },
        quarantined,
        resumed_units,
        executed_units,
        cache: cache_stats.report(),
        prune: plan.report(nr),
        interrupted,
    })
}

/// Run one pipeline-prefix stage and derive everything downstream
/// pipelines need from it: the stage outcome plus per-platform
/// (encode, decode) stage times. This is the unit of work the prefix
/// cache stores, so a cache hit skips both the stage execution and the
/// platform-time loop.
///
/// `ns_slot` accrues the stage's wall nanoseconds (including a failing
/// stage's partial time, so quarantine records show where a dying unit
/// spent its budget).
#[allow(clippy::too_many_arguments)]
fn eval_prefix_stage(
    comp: &dyn lc_core::Component,
    input: &ChunkedData,
    verify: bool,
    watchdog: Option<&Watchdog>,
    configs: &[SimConfig],
    chunks: u64,
    extrapolate: f64,
    ns_slot: &mut u64,
) -> Result<PrefixEntry, StageFault> {
    let t = Instant::now();
    let r = run_stage_checked(comp, input, verify, watchdog);
    *ns_slot += t.elapsed().as_nanos() as u64;
    let outcome = r?;
    let (e, d) = (
        outcome.enc.scaled(extrapolate),
        outcome.dec.scaled(extrapolate),
    );
    let times = configs
        .iter()
        .map(|cfg| (stage_time(cfg, &e, chunks), stage_time(cfg, &d, chunks)))
        .collect();
    Ok(PrefixEntry { outcome, times })
}

/// Execute one work unit: every pipeline in the contiguous range
/// `(i1, *, *)`. The walk is per-pipeline — for each `(s2, s3)` pair the
/// `(s1)` and `(s1, s2)` prefixes are looked up in the unit's
/// [`UnitPrefixCache`] (memoized mode) or recomputed from scratch
/// (naive mode), and only the final reducer stage always executes. Every
/// stage runs behind the panic fence and watchdog of
/// [`run_stage_checked`]; on fault, the returned trace names the stages
/// that were executing.
///
/// `stage_ns` accumulates wall nanoseconds per stage position; cache
/// hits contribute nothing there (no stage ran).
#[allow(clippy::too_many_arguments)]
fn run_unit(
    sc: &StudyConfig,
    ctx: &FileCtx<'_>,
    i1: usize,
    watchdog: Option<&Watchdog>,
    stage_ns: &mut [u64; 3],
    sweep: &SweepMode,
    cache_stats: &CacheStats,
    plan: &PrunePlan,
    workers: usize,
    shed_limit: Option<u64>,
) -> Result<UnitRows, (StageFault, String)> {
    let nc = sc.space.components.len();
    let nr = sc.space.reducers.len();
    let stride = nc * nr;
    let c_total = ctx.configs.len();
    let (configs, pre, chunks, unc) = (ctx.configs, ctx.pre, ctx.chunks, ctx.unc);
    let extrapolate = ctx.extrapolate;
    let s1_name = sc.space.components[i1].name();

    let mut row_enc = vec![0f64; c_total * stride];
    let mut row_dec = vec![0f64; c_total * stride];
    let mut row_comp = vec![0u64; stride];

    let mut cache = sweep
        .per_unit_cap_bytes(workers)
        .map(|cap| UnitPrefixCache::new(cap, cache_stats).with_shed_limit(shed_limit));

    for i2 in 0..nc {
        // Pruned (s1, s2) rows are proven equivalent to their
        // representative ordering and never execute; their row slots
        // stay zero (and are journaled as zeros) until the campaign's
        // aggregation copies the representative's sums in.
        if plan.skips(i1, i2) {
            if lc_telemetry::enabled() {
                lc_telemetry::counter("campaign.analyze.skipped_rows").add(1);
            }
            continue;
        }
        let s2_name = sc.space.components[i2].name();
        for ir in 0..nr {
            // Canonical mode: a certified class member never executes;
            // its cell stays zero until aggregation copies the class
            // representative's sums in. (Commute mode skips whole rows
            // above; the two skip sets are never both non-empty.)
            if plan.skips_cell((i1 * nc + i2) * nr + ir) {
                if lc_telemetry::enabled() {
                    lc_telemetry::counter("campaign.analyze.skipped_cells").add(1);
                }
                continue;
            }
            // (s1) prefix: pinned in the cache after the first pipeline.
            let e1: Arc<PrefixEntry> = match &mut cache {
                Some(c) => c.level1(|| {
                    eval_prefix_stage(
                        sc.space.components[i1].as_ref(),
                        ctx.input,
                        sc.verify,
                        watchdog,
                        configs,
                        chunks,
                        extrapolate,
                        &mut stage_ns[0],
                    )
                    .map_err(|f| (f, format!("s1={s1_name}")))
                })?,
                None => {
                    cache_stats.lookup(1);
                    cache_stats.miss(1);
                    Arc::new(
                        eval_prefix_stage(
                            sc.space.components[i1].as_ref(),
                            ctx.input,
                            sc.verify,
                            watchdog,
                            configs,
                            chunks,
                            extrapolate,
                            &mut stage_ns[0],
                        )
                        .map_err(|f| (f, format!("s1={s1_name}")))?,
                    )
                }
            };
            // (s1, s2) prefix: LRU-cached under the byte cap. A hit, a
            // fresh computation, and a post-eviction recomputation are
            // bit-identical — stages are deterministic.
            let e2: Arc<PrefixEntry> = match &mut cache {
                Some(c) => c.level2(i2, || {
                    eval_prefix_stage(
                        sc.space.components[i2].as_ref(),
                        &e1.outcome.output,
                        sc.verify,
                        watchdog,
                        configs,
                        chunks,
                        extrapolate,
                        &mut stage_ns[1],
                    )
                    .map_err(|f| (f, format!("s1={s1_name} s2={s2_name}")))
                })?,
                None => {
                    cache_stats.lookup(1);
                    cache_stats.miss(1);
                    Arc::new(
                        eval_prefix_stage(
                            sc.space.components[i2].as_ref(),
                            &e1.outcome.output,
                            sc.verify,
                            watchdog,
                            configs,
                            chunks,
                            extrapolate,
                            &mut stage_ns[1],
                        )
                        .map_err(|f| (f, format!("s1={s1_name} s2={s2_name}")))?,
                    )
                }
            };
            // Final reducer: unique to this pipeline, always executed.
            let t3 = Instant::now();
            let r3 = run_stage_checked(
                sc.space.reducers[ir].as_ref(),
                &e2.outcome.output,
                sc.verify,
                watchdog,
            );
            stage_ns[2] += t3.elapsed().as_nanos() as u64;
            let s3 = r3.map_err(|f| {
                let s3_name = sc.space.reducers[ir].name();
                (f, format!("s1={s1_name} s2={s2_name} s3={s3_name}"))
            })?;
            let (s3e, s3d) = (s3.enc.scaled(extrapolate), s3.dec.scaled(extrapolate));
            let comp_bytes = (s3.output.total_bytes() as f64 * extrapolate) as u64 + 5 * chunks;
            let local = i2 * nr + ir;
            row_comp[local] = comp_bytes;
            let p_idx = i1 * stride + local;
            let (st1, st2) = (&e1.times, &e2.times);
            for (c, cfg) in configs.iter().enumerate() {
                let st3_enc = stage_time(cfg, &s3e, chunks);
                let st3_dec = stage_time(cfg, &s3d, chunks);
                // Roofline: in-SM work overlaps DRAM traffic; the
                // slower of the two bounds the kernel (see
                // gpu_sim::total_time).
                let mem = (unc + comp_bytes) as f64 * pre[c].inv_bw;
                let t_enc = (st1[c].0 + st2[c].0 + st3_enc).max(mem) + pre[c].fw_enc;
                let t_dec = (st1[c].1 + st2[c].1 + st3_dec).max(mem) + pre[c].fw_dec;
                let seed = (ctx.file_i as u64) << 48 | (p_idx as u64) << 8 | c as u64;
                let t_enc = median_of_three_runs(t_enc, splitmix64(seed));
                let t_dec = median_of_three_runs(t_dec, splitmix64(seed ^ 0xDEC0));
                row_enc[c * stride + local] =
                    throughput_gbs(unc, t_enc).max(f64::MIN_POSITIVE).ln();
                row_dec[c * stride + local] =
                    throughput_gbs(unc, t_dec).max(f64::MIN_POSITIVE).ln();
            }
        }
    }
    Ok((row_enc, row_dec, row_comp))
}

/// The journal fingerprint: everything that determines a unit's numeric
/// results. Resume refuses a journal whose meta record differs —
/// *informational* fields (see [`strip_informational`]) excepted.
fn journal_meta(
    sc: &StudyConfig,
    c_total: usize,
    sweep: &SweepMode,
    plan: &PrunePlan,
    shard: Option<&crate::shard::ShardSpec>,
    with_dataset: bool,
) -> Value {
    let mut meta = journal_meta_fingerprint(sc, c_total);
    if let Value::Object(fields) = &mut meta {
        // NOT informational: a shard journal holds only its owned
        // units, so its identity must pin both resume (same shard
        // only) and merge (complete set only). Whole-campaign journals
        // write no field, keeping pre-shard journals resumable.
        if let Some(s) = shard {
            fields.push(("shard".to_string(), Value::from(s.meta_label())));
        }
        // NOT informational: the digests pin the exact input bytes the
        // rows were measured on. Two journals that disagree here were
        // run on different data and their rows must never be mixed —
        // resume and merge both refuse with the first differing file.
        if with_dataset {
            fields.push((
                "dataset".to_string(),
                Value::array(sc.files.iter().map(|f| {
                    let data = lc_data::generate(f, sc.scale);
                    Value::from(format!(
                        "{}:{:08x}",
                        f.name,
                        lc_core::checksum::crc32(&data)
                    ))
                })),
            ));
        }
        // Informational: records how the sweep was executed, but does
        // not participate in the resume fingerprint (sweep modes are
        // bit-identical, so mixing them across a resume is sound).
        fields.push(("sweep".to_string(), Value::from(sweep.label())));
        // NOT informational: pruning changes journaled unit rows
        // (pruned slots are written as zeros), so a journal written
        // under one prune mode must not be resumed under another. Off
        // writes no field at all — a pruning-off journal is row-for-row
        // what pre-pruning versions wrote, and stays resumable as such.
        if plan.mode != PruneMode::Off {
            fields.push(("prune".to_string(), Value::from(plan.mode.label())));
        }
        // Canonical skips depend on the certified class map; its
        // fingerprint pins the exact partition the rows were journaled
        // under (a changed rewrite system must not resume old rows).
        if plan.mode == PruneMode::Canonical {
            fields.push((
                "class_map".to_string(),
                Value::from(format!("{:016x}", plan.class_map)),
            ));
        }
    }
    meta
}

/// Journal-meta comparison ignores informational fields (currently just
/// `"sweep"`): they describe execution strategy, not numbers. This also
/// keeps journals from before the sweep field resumable. The `"prune"`
/// field is deliberately *not* stripped — pruning changes the journaled
/// rows themselves, so it is part of the fingerprint.
pub(crate) fn strip_informational(meta: &Value) -> Value {
    match meta {
        Value::Object(fields) => Value::Object(
            fields
                .iter()
                .filter(|(k, _)| k.as_str() != "sweep")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

fn journal_meta_fingerprint(sc: &StudyConfig, c_total: usize) -> Value {
    let comp_sig: Vec<&str> = sc.space.components.iter().map(|c| c.name()).collect();
    let red_sig: Vec<&str> = sc.space.reducers.iter().map(|c| c.name()).collect();
    Value::object([
        ("kind", Value::from("meta")),
        ("journal_version", Value::from(journal::JOURNAL_VERSION)),
        (
            "space",
            Value::from(format!("{}|{}", comp_sig.join(","), red_sig.join(","))),
        ),
        (
            "files",
            Value::array(sc.files.iter().map(|f| Value::from(f.name))),
        ),
        (
            "opt_levels",
            Value::array(sc.opt_levels.iter().map(|o| Value::from(format!("{o:?}")))),
        ),
        ("scale", Value::from(sc.scale.divisor() as u64)),
        ("verify", Value::from(sc.verify)),
        ("configs", Value::from(c_total as u64)),
    ])
}

/// Serialize timing as a nested object — `DeadlineExceeded` records carry
/// their own top-level `elapsed_ms`, so the unit timing must not collide.
fn timing_value(t: UnitTiming) -> Value {
    Value::object([
        ("elapsed_ms", Value::from(t.elapsed_ms)),
        (
            "stage_ms",
            Value::array(t.stage_ms.iter().map(|&v| Value::from(v))),
        ),
    ])
}

fn timing_from_value(record: &Value) -> Result<UnitTiming, String> {
    let v = record
        .get("timing")
        .ok_or_else(|| "record missing timing".to_string())?;
    let elapsed_ms = v
        .get("elapsed_ms")
        .and_then(Value::as_u64)
        .ok_or_else(|| "record missing timing.elapsed_ms".to_string())?;
    let arr = v
        .get("stage_ms")
        .and_then(Value::as_array)
        .ok_or_else(|| "record missing timing.stage_ms".to_string())?;
    if arr.len() != 3 {
        return Err(format!("stage_ms has {} entries, expected 3", arr.len()));
    }
    let mut stage_ms = [0u64; 3];
    for (dst, x) in stage_ms.iter_mut().zip(arr) {
        *dst = x
            .as_u64()
            .ok_or_else(|| "non-integer value in stage_ms".to_string())?;
    }
    Ok(UnitTiming {
        elapsed_ms,
        stage_ms,
    })
}

fn unit_value(
    file_i: usize,
    file_name: &str,
    i1: usize,
    space: &Space,
    rows: &UnitRows,
    timing: UnitTiming,
) -> Value {
    let mut fields = vec![
        ("kind", Value::from("unit")),
        ("file_index", Value::from(file_i as u64)),
        ("file", Value::from(file_name)),
        ("s1_index", Value::from(i1 as u64)),
        ("s1", Value::from(space.components[i1].name())),
        ("timing", timing_value(timing)),
    ];
    fields.extend([
        ("enc", Value::array(rows.0.iter().map(|&v| Value::from(v)))),
        ("dec", Value::array(rows.1.iter().map(|&v| Value::from(v)))),
        ("comp", Value::array(rows.2.iter().map(|&v| Value::from(v)))),
    ]);
    Value::object(fields)
}

fn unit_from_value(
    v: &Value,
    c_total: usize,
    stride: usize,
) -> Result<((usize, usize), UnitRows), String> {
    let idx = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("unit record missing {key}"))
    };
    let key = (idx("file_index")?, idx("s1_index")?);
    let floats = |field: &'static str| -> Result<Vec<f64>, String> {
        let arr = v
            .get(field)
            .and_then(Value::as_array)
            .ok_or_else(|| format!("unit record missing {field}"))?;
        if arr.len() != c_total * stride {
            return Err(format!(
                "unit record {field} has {} values, campaign expects {}",
                arr.len(),
                c_total * stride
            ));
        }
        arr.iter()
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| format!("non-numeric value in {field}"))
            })
            .collect()
    };
    let enc = floats("enc")?;
    let dec = floats("dec")?;
    let comp_arr = v
        .get("comp")
        .and_then(Value::as_array)
        .ok_or_else(|| "unit record missing comp".to_string())?;
    if comp_arr.len() != stride {
        return Err(format!(
            "unit record comp has {} values, campaign expects {stride}",
            comp_arr.len()
        ));
    }
    let comp = comp_arr
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| "non-integer value in comp".to_string())
        })
        .collect::<Result<Vec<u64>, String>>()?;
    Ok((key, (enc, dec, comp)))
}

fn quarantine_value(q: &QuarantineEntry) -> Value {
    let mut fields = vec![
        ("kind", Value::from("quarantine")),
        ("file_index", Value::from(q.file_index as u64)),
        ("file", Value::from(q.file.as_str())),
        ("s1_index", Value::from(q.s1_index as u64)),
        ("s1", Value::from(q.component.as_str())),
        ("trace", Value::from(q.stage_trace.as_str())),
        ("timing", timing_value(q.timing)),
    ];
    match &q.reason {
        QuarantineReason::Panic(msg) => {
            fields.push(("reason", Value::from("panic")));
            fields.push(("message", Value::from(msg.as_str())));
        }
        QuarantineReason::DeadlineExceeded {
            elapsed_ms,
            limit_ms,
        } => {
            fields.push(("reason", Value::from("deadline")));
            fields.push(("elapsed_ms", Value::from(*elapsed_ms)));
            fields.push(("limit_ms", Value::from(*limit_ms)));
        }
    }
    Value::object(fields)
}

fn quarantine_from_value(v: &Value) -> Result<QuarantineEntry, String> {
    let s = |key: &str| {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("quarantine record missing {key}"))
    };
    let n = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("quarantine record missing {key}"))
    };
    let reason = match s("reason")?.as_str() {
        "panic" => QuarantineReason::Panic(s("message")?),
        "deadline" => QuarantineReason::DeadlineExceeded {
            elapsed_ms: n("elapsed_ms")?,
            limit_ms: n("limit_ms")?,
        },
        other => return Err(format!("unknown quarantine reason {other:?}")),
    };
    Ok(QuarantineEntry {
        file: s("file")?,
        file_index: n("file_index")? as usize,
        component: s("s1")?,
        s1_index: n("s1_index")? as usize,
        reason,
        stage_trace: s("trace")?,
        timing: timing_from_value(v)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::CompilerId;

    fn quick_measurements() -> Measurements {
        run_campaign(&StudyConfig::quick())
    }

    #[test]
    fn campaign_produces_positive_throughputs() {
        let m = quick_measurements();
        assert_eq!(m.configs.len(), 11);
        assert_eq!(m.space.len(), 16 * 16 * 8);
        for c in 0..m.configs.len() {
            for dir in [Direction::Encode, Direction::Decode] {
                for &v in m.series(c, dir) {
                    assert!(v > 0.0 && v.is_finite(), "{v}");
                }
            }
        }
    }

    #[test]
    fn decode_is_generally_faster_than_encode() {
        // Paper §6.1: decoding throughputs are generally higher.
        let m = quick_measurements();
        let c = m
            .config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3)
            .unwrap();
        let enc_med = crate::stats::median(m.series(c, Direction::Encode));
        let dec_med = crate::stats::median(m.series(c, Direction::Decode));
        assert!(
            dec_med > enc_med,
            "decode median {dec_med} vs encode median {enc_med}"
        );
    }

    #[test]
    fn clang_encode_slower_decode_faster() {
        let m = quick_measurements();
        let nv = m
            .config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3)
            .unwrap();
        let cl = m
            .config_index("RTX 4090", CompilerId::Clang, OptLevel::O3)
            .unwrap();
        let enc_nv = crate::stats::median(m.series(nv, Direction::Encode));
        let enc_cl = crate::stats::median(m.series(cl, Direction::Encode));
        let dec_nv = crate::stats::median(m.series(nv, Direction::Decode));
        let dec_cl = crate::stats::median(m.series(cl, Direction::Decode));
        assert!(enc_cl < enc_nv, "Clang encode {enc_cl} vs NVCC {enc_nv}");
        assert!(dec_cl > dec_nv, "Clang decode {dec_cl} vs NVCC {dec_nv}");
    }

    #[test]
    fn nvcc_hipcc_close_on_nvidia() {
        let m = quick_measurements();
        let nv = m
            .config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3)
            .unwrap();
        let hip = m
            .config_index("RTX 4090", CompilerId::Hipcc, OptLevel::O3)
            .unwrap();
        let a = crate::stats::median(m.series(nv, Direction::Encode));
        let b = crate::stats::median(m.series(hip, Direction::Encode));
        assert!((a / b - 1.0).abs() < 0.03, "{a} vs {b}");
    }

    #[test]
    fn gpu_staircase() {
        let m = quick_measurements();
        let titan = m
            .config_index("TITAN V", CompilerId::Nvcc, OptLevel::O3)
            .unwrap();
        let ti = m
            .config_index("RTX 3080 Ti", CompilerId::Nvcc, OptLevel::O3)
            .unwrap();
        let k90 = m
            .config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3)
            .unwrap();
        let med = |c| crate::stats::median(m.series(c, Direction::Encode));
        assert!(med(titan) < med(ti), "TITAN V < 3080 Ti");
        assert!(med(ti) < med(k90), "3080 Ti < 4090");
    }

    #[test]
    fn median_of_three_runs_is_deterministic_and_small() {
        let a = median_of_three_runs(1.0, 42);
        let b = median_of_three_runs(1.0, 42);
        assert_eq!(a, b);
        assert!((a - 1.0).abs() < 0.005);
        let c = median_of_three_runs(1.0, 43);
        assert_ne!(a, c, "different seeds give different jitter");
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_files_rejected() {
        let mut sc = StudyConfig::quick();
        sc.files.clear();
        run_campaign(&sc);
    }

    // ---- fault tolerance -------------------------------------------------

    use std::sync::Arc;

    use lc_core::{Component, ComponentKind, KernelStats};

    fn tiny_config() -> StudyConfig {
        let mut sc = StudyConfig::quick();
        sc.space = Space::restricted_to_families(&["DIFF", "RZE"]);
        sc.files = vec![&SP_FILES[0], &SP_FILES[10]];
        sc
    }

    fn temp_journal(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "lc-campaign-test-{}-{tag}.jsonl",
            std::process::id()
        ));
        p
    }

    fn assert_bitwise_equal(a: &Measurements, b: &Measurements) {
        assert_eq!(a.enc.len(), b.enc.len());
        for (x, y) in a.enc.iter().zip(&b.enc) {
            assert_eq!(x.to_bits(), y.to_bits(), "enc differs: {x} vs {y}");
        }
        for (x, y) in a.dec.iter().zip(&b.dec) {
            assert_eq!(x.to_bits(), y.to_bits(), "dec differs: {x} vs {y}");
        }
        assert_eq!(a.compressed, b.compressed);
        assert_eq!(a.total_uncompressed, b.total_uncompressed);
    }

    #[test]
    fn journaling_does_not_change_results() {
        let sc = tiny_config();
        let plain = run_campaign(&sc);
        let path = temp_journal("nochange");
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            ..Default::default()
        };
        let journaled = run_campaign_with(&sc, &opts).unwrap();
        assert_bitwise_equal(&plain, &journaled.measurements);
        assert_eq!(journaled.resumed_units, 0);
        assert_eq!(journaled.executed_units, 2 * sc.space.components.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_after_partial_journal_is_byte_identical() {
        let sc = tiny_config();
        let path = temp_journal("resume");
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            ..Default::default()
        };
        let uninterrupted = run_campaign_with(&sc, &opts).unwrap();

        // Simulate a kill after 3 completed work units: keep the meta
        // line plus the first 3 unit records, plus a torn tail.
        let full = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = full.lines().collect();
        let total_units = lines.len() - 1;
        lines.truncate(4);
        let mut partial = lines.join("\n");
        partial.push_str("\n{\"kind\":\"unit\",\"file_ind");
        std::fs::write(&path, partial).unwrap();

        let opts = CampaignOptions {
            journal: Some(path.clone()),
            resume: true,
            ..Default::default()
        };
        let resumed = run_campaign_with(&sc, &opts).unwrap();
        assert_eq!(resumed.resumed_units, 3);
        assert_eq!(resumed.executed_units, total_units - 3);
        assert_bitwise_equal(&uninterrupted.measurements, &resumed.measurements);

        // And a second resume from the now-complete journal recomputes
        // nothing at all.
        let again = run_campaign_with(&sc, &opts).unwrap();
        assert_eq!(again.executed_units, 0);
        assert_eq!(again.resumed_units, total_units);
        assert_bitwise_equal(&uninterrupted.measurements, &again.measurements);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_foreign_journal() {
        let sc = tiny_config();
        let path = temp_journal("foreign");
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            ..Default::default()
        };
        run_campaign_with(&sc, &opts).unwrap();

        // A different input set trips the dataset-digest refusal, which
        // names the data mismatch rather than the generic fingerprint.
        let mut other = sc.clone();
        other.files = vec![&SP_FILES[0]];
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            resume: true,
            ..Default::default()
        };
        let err = match run_campaign_with(&other, &opts) {
            Err(e) => e,
            Ok(_) => panic!("resuming under a different input set must fail"),
        };
        assert!(err.contains("different input data"), "{err}");

        // A non-dataset config change (verify flag) still lands on the
        // generic fingerprint refusal.
        let mut other = sc.clone();
        other.verify = !other.verify;
        let err = match run_campaign_with(&other, &opts) {
            Err(e) => e,
            Ok(_) => panic!("resuming under a different configuration must fail"),
        };
        assert!(err.contains("different campaign configuration"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_campaign_merges_byte_identical() {
        let sc = tiny_config();
        let dir = std::env::temp_dir().join(format!("lc-shard-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Reference: one journaled single-process run.
        let single = CampaignOptions {
            journal: Some(dir.join("single.jsonl")),
            ..Default::default()
        };
        let reference = run_campaign_with(&sc, &single).unwrap();

        // The same campaign as 3 independent shards, then merged.
        let n = 3;
        let nc = sc.space.components.len();
        let mut sharded_executed = 0;
        for index in 0..n {
            let spec = crate::shard::ShardSpec { index, count: n };
            let opts = CampaignOptions {
                journal: Some(dir.join(spec.journal_file())),
                shard: Some(spec),
                ..Default::default()
            };
            sharded_executed += run_campaign_with(&sc, &opts).unwrap().executed_units;
        }
        assert_eq!(
            sharded_executed,
            sc.files.len() * nc,
            "shards together must execute exactly the full unit space"
        );
        let merged = dir.join("journal.jsonl");
        let rep = crate::shard::merge_shards(&dir, &merged).unwrap();
        assert_eq!(rep.units, sc.files.len() * nc);

        let opts = CampaignOptions {
            journal: Some(merged),
            resume: true,
            ..Default::default()
        };
        let fused = run_campaign_with(&sc, &opts).unwrap();
        assert_eq!(
            fused.executed_units, 0,
            "merge must leave nothing to recompute"
        );
        assert_eq!(fused.resumed_units, sc.files.len() * nc);
        assert_bitwise_equal(&reference.measurements, &fused.measurements);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_wrong_shard_identity() {
        let sc = tiny_config();
        let path = temp_journal("shardid");
        let spec = crate::shard::ShardSpec { index: 0, count: 2 };
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            shard: Some(spec),
            ..Default::default()
        };
        run_campaign_with(&sc, &opts).unwrap();

        // Wrong shard index.
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            resume: true,
            shard: Some(crate::shard::ShardSpec { index: 1, count: 2 }),
            ..Default::default()
        };
        let err = match run_campaign_with(&sc, &opts) {
            Err(e) => e,
            Ok(_) => panic!("resuming under the wrong shard index must fail"),
        };
        assert!(err.contains("shard 1/2"), "{err}");

        // Whole-campaign resume from a shard journal.
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            resume: true,
            ..Default::default()
        };
        let err = match run_campaign_with(&sc, &opts) {
            Err(e) => e,
            Ok(_) => panic!("whole-campaign resume from a shard journal must fail"),
        };
        assert!(err.contains("whole campaign"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// Identity mutator that panics when fed its trigger bytes — the raw
    /// first chunk of an input file, so it detonates exactly when it runs
    /// as stage 1 (or after another identity-on-this-input stage).
    struct BoomComponent {
        trigger: Vec<u8>,
    }

    impl Component for BoomComponent {
        fn name(&self) -> &'static str {
            "BOOM_1"
        }
        fn kind(&self) -> ComponentKind {
            ComponentKind::Mutator
        }
        fn word_size(&self) -> usize {
            1
        }
        fn complexity(&self) -> lc_core::Complexity {
            lc_core::Complexity::new(
                lc_core::WorkClass::N,
                lc_core::SpanClass::Const,
                lc_core::WorkClass::N,
                lc_core::SpanClass::Const,
            )
        }
        fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, _: &mut KernelStats) {
            assert!(input != self.trigger.as_slice(), "intentional test panic");
            out.extend_from_slice(input);
        }
        fn decode_chunk(
            &self,
            input: &[u8],
            out: &mut Vec<u8>,
            _: &mut KernelStats,
        ) -> Result<(), lc_core::DecodeError> {
            out.extend_from_slice(input);
            Ok(())
        }
    }

    fn booby_trapped_config() -> (StudyConfig, usize) {
        let mut sc = tiny_config();
        sc.files = vec![&SP_FILES[0]];
        let data = lc_data::generate(sc.files[0], sc.scale);
        let trigger = data[..lc_core::CHUNK_SIZE.min(data.len())].to_vec();
        sc.space
            .components
            .push(Arc::new(BoomComponent { trigger }));
        let boom = sc.space.components.len() - 1;
        (sc, boom)
    }

    #[test]
    fn panicking_component_is_quarantined_not_fatal() {
        let (sc, boom) = booby_trapped_config();
        let path = temp_journal("quarantine");
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            isolate: true,
            ..Default::default()
        };
        let outcome = run_campaign_with(&sc, &opts).unwrap();
        assert!(
            !outcome.quarantined.is_empty(),
            "boom unit must be quarantined"
        );
        assert!(
            outcome.quarantined.len() < sc.space.components.len(),
            "healthy units must survive the bad component"
        );
        for q in &outcome.quarantined {
            assert!(
                q.stage_trace.contains("BOOM_1"),
                "trace {:?}",
                q.stage_trace
            );
            match &q.reason {
                QuarantineReason::Panic(msg) => {
                    assert!(msg.contains("intentional test panic"), "{msg}")
                }
                other => panic!("expected Panic, got {other:?}"),
            }
        }
        let direct = outcome
            .quarantined
            .iter()
            .find(|q| q.s1_index == boom)
            .expect("the boom-as-stage-1 unit is quarantined");
        assert_eq!(direct.stage_trace, "s1=BOOM_1");
        assert_eq!(direct.component, "BOOM_1");
        assert_eq!(direct.file, "msg_bt");

        // Resume: quarantined units stay quarantined (not re-run) and the
        // numbers stay byte-identical.
        let opts = CampaignOptions {
            resume: true,
            ..opts
        };
        let resumed = run_campaign_with(&sc, &opts).unwrap();
        assert_eq!(resumed.executed_units, 0);
        assert_eq!(resumed.quarantined, outcome.quarantined);
        assert_bitwise_equal(&outcome.measurements, &resumed.measurements);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "intentional test panic")]
    fn without_isolation_a_unit_panic_propagates() {
        let (sc, _) = booby_trapped_config();
        let _ = run_campaign_with(&sc, &CampaignOptions::default());
    }

    #[test]
    fn quarantine_record_round_trips_timing() {
        let entry = QuarantineEntry {
            file: "msg_bt".to_string(),
            file_index: 0,
            component: "BOOM_1".to_string(),
            s1_index: 7,
            reason: QuarantineReason::DeadlineExceeded {
                elapsed_ms: 9000,
                limit_ms: 5000,
            },
            stage_trace: "s1=BOOM_1 s2=DIFF_4".to_string(),
            timing: UnitTiming {
                elapsed_ms: 9001,
                stage_ms: [100, 8900, 0],
            },
        };
        let v = quarantine_value(&entry);
        assert_eq!(quarantine_from_value(&v).unwrap(), entry);
    }

    // ---- prefix-memoized sweeps ------------------------------------------

    /// The tentpole guarantee: the prefix-memoized executor and the naive
    /// per-pipeline executor produce byte-identical measurements on the
    /// quick space.
    #[test]
    fn memoized_and_naive_sweeps_are_bitwise_identical() {
        let sc = StudyConfig::quick();
        let memoized = run_campaign_with(&sc, &CampaignOptions::default()).unwrap();
        let naive = run_campaign_with(
            &sc,
            &CampaignOptions {
                sweep: SweepMode::Naive,
                ..Default::default()
            },
        )
        .unwrap();
        assert_bitwise_equal(&memoized.measurements, &naive.measurements);

        // Cache accounting sanity. Per unit: 2·nc·nr lookups; memoized
        // mode misses once for s1 and once per s2 (no evictions at the
        // default cap), naive mode misses every lookup.
        let nc = sc.space.components.len() as u64;
        let nr = sc.space.reducers.len() as u64;
        let units = sc.files.len() as u64 * nc;
        let lookups = units * 2 * nc * nr;
        let m = memoized.cache;
        assert_eq!(m.hits + m.misses, lookups);
        assert_eq!(m.misses, units * (1 + nc));
        assert_eq!(m.evictions, 0);
        assert!(m.hit_rate() > 0.9, "hit rate {}", m.hit_rate());
        assert!(m.peak_resident_bytes > 0);
        let n = naive.cache;
        assert_eq!(n.hits, 0);
        assert_eq!(n.misses, lookups);
        assert_eq!(n.hit_rate(), 0.0);
    }

    /// An eviction-heavy cache (cap 0 ⇒ only the live entry survives)
    /// recomputes evicted prefixes — and still changes nothing.
    #[test]
    fn evicting_cache_is_still_bitwise_identical() {
        let sc = tiny_config();
        let reference = run_campaign(&sc);
        let capped = run_campaign_with(
            &sc,
            &CampaignOptions {
                sweep: SweepMode::Memoized { cache_mb: 0 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_bitwise_equal(&reference, &capped.measurements);
        assert!(capped.cache.evictions > 0, "cap 0 must evict");
    }

    /// Strip the `timing` field from a journal unit record — the only
    /// part that may differ between sweep modes.
    fn without_timing(v: &Value) -> Value {
        match v {
            Value::Object(fields) => Value::Object(
                fields
                    .iter()
                    .filter(|(k, _)| k.as_str() != "timing")
                    .cloned()
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    #[test]
    fn sweep_modes_write_identical_journal_units_modulo_timing() {
        let sc = tiny_config();
        let path_m = temp_journal("sweep-memo");
        let path_n = temp_journal("sweep-naive");
        run_campaign_with(
            &sc,
            &CampaignOptions {
                journal: Some(path_m.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        run_campaign_with(
            &sc,
            &CampaignOptions {
                journal: Some(path_n.clone()),
                sweep: SweepMode::Naive,
                ..Default::default()
            },
        )
        .unwrap();
        let jm = journal::load(&path_m).unwrap();
        let jn = journal::load(&path_n).unwrap();
        // Meta records differ only in the informational sweep label.
        assert_ne!(jm.meta, jn.meta);
        assert_eq!(strip_informational(&jm.meta), strip_informational(&jn.meta));
        // Unit records are identical modulo timing. Journal order is
        // completion order (nondeterministic under the pool), so compare
        // keyed by (file_index, s1_index).
        let key = |v: &Value| {
            (
                v.get("file_index").and_then(Value::as_u64).unwrap(),
                v.get("s1_index").and_then(Value::as_u64).unwrap(),
            )
        };
        let m: HashMap<_, _> = jm
            .units
            .iter()
            .map(|u| (key(u), without_timing(u)))
            .collect();
        let n: HashMap<_, _> = jn
            .units
            .iter()
            .map(|u| (key(u), without_timing(u)))
            .collect();
        assert_eq!(m.len(), n.len());
        assert!(!m.is_empty());
        assert_eq!(m, n);
        std::fs::remove_file(&path_m).ok();
        std::fs::remove_file(&path_n).ok();
    }

    /// Sweep mode is informational: a journal written by one mode resumes
    /// under the other, recomputing nothing.
    #[test]
    fn resume_crosses_sweep_modes() {
        let sc = tiny_config();
        let path = temp_journal("sweep-cross");
        let memoized = run_campaign_with(
            &sc,
            &CampaignOptions {
                journal: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let resumed = run_campaign_with(
            &sc,
            &CampaignOptions {
                journal: Some(path.clone()),
                resume: true,
                sweep: SweepMode::Naive,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.executed_units, 0);
        assert_bitwise_equal(&memoized.measurements, &resumed.measurements);
        std::fs::remove_file(&path).ok();
    }

    // ---- contract-driven pruning -----------------------------------------

    /// A space with commuting stage pairs: TCMS mutators × TUPL
    /// shufflers (10 pairs — TUPL field sizes 1/2/4 each admit the
    /// mutator word sizes dividing them), RZE as the reducer family.
    fn tupl_config() -> StudyConfig {
        let mut sc = StudyConfig::quick();
        sc.space = Space::restricted_to_families(&["TCMS", "TUPL", "RZE"]);
        sc.files = vec![&SP_FILES[0], &SP_FILES[10]];
        sc
    }

    /// Satellite guarantee: pruning changes nothing it didn't prove.
    /// Non-deduplicated slots are bitwise identical to full enumeration;
    /// deduplicated slots equal their representative exactly and the
    /// full-enumeration value up to the modeled run-to-run jitter; the
    /// pruned count is accounted exactly.
    #[test]
    fn pruned_and_full_enumeration_agree() {
        let sc = tupl_config();
        let pruned = run_campaign_with(&sc, &CampaignOptions::default()).unwrap();
        let full = run_campaign_with(
            &sc,
            &CampaignOptions {
                prune: PruneMode::Off,
                ..Default::default()
            },
        )
        .unwrap();

        // Exact accounting.
        let plan = PrunePlan::for_space(&sc.space, PruneMode::Commute);
        let nr = sc.space.reducers.len();
        assert_eq!(plan.dups.len(), 10, "TCMS × TUPL commuting pairs");
        assert_eq!(pruned.prune.commuting_pairs, plan.dups.len());
        assert_eq!(pruned.prune.pruned_pipelines, plan.dups.len() * nr);
        assert_eq!(pruned.prune.mode, "commute");
        assert_eq!(full.prune.pruned_pipelines, 0);
        assert_eq!(full.prune.mode, "off");

        // Compressed sizes carry no jitter: every slot, including the
        // deduplicated ones, must agree exactly — the commutation proof
        // says both orders feed the reducer identical bytes.
        assert_eq!(pruned.measurements.compressed, full.measurements.compressed);
        assert_eq!(
            pruned.measurements.total_uncompressed,
            full.measurements.total_uncompressed
        );

        let p_total = sc.space.len();
        let c_total = pruned.measurements.configs.len();
        let mut dup_slots = 0usize;
        for p in 0..p_total {
            let id = sc.space.id_at(p);
            let is_dup = plan.skips(id.s1 as usize, id.s2 as usize);
            if is_dup {
                dup_slots += 1;
            }
            for c in 0..c_total {
                let i = c * p_total + p;
                let (pe, fe) = (pruned.measurements.enc[i], full.measurements.enc[i]);
                let (pd, fd) = (pruned.measurements.dec[i], full.measurements.dec[i]);
                if is_dup {
                    // Same pipeline, different jitter seed (the pruned
                    // slot inherits its representative's ±0.4% draw).
                    assert!((pe / fe - 1.0).abs() < 0.02, "enc {pe} vs {fe} at {p}");
                    assert!((pd / fd - 1.0).abs() < 0.02, "dec {pd} vs {fd} at {p}");
                } else {
                    assert_eq!(pe.to_bits(), fe.to_bits(), "enc differs at {p}");
                    assert_eq!(pd.to_bits(), fd.to_bits(), "dec differs at {p}");
                }
            }
        }
        assert!(dup_slots > 0, "the TUPL space must actually deduplicate");
        assert_eq!(dup_slots, pruned.prune.pruned_pipelines);

        // Deduplicated slots are exact copies of their representative.
        let nc = sc.space.components.len();
        for dup in &plan.dups {
            let (pj, pi) = dup.pruned;
            let (ri, rj) = dup.representative;
            for r in 0..nr {
                let p = (pj * nc + pi) * nr + r;
                let q = (ri * nc + rj) * nr + r;
                assert_eq!(
                    pruned.measurements.compressed[p],
                    pruned.measurements.compressed[q]
                );
                for c in 0..c_total {
                    assert_eq!(
                        pruned.measurements.enc[c * p_total + p].to_bits(),
                        pruned.measurements.enc[c * p_total + q].to_bits()
                    );
                    assert_eq!(
                        pruned.measurements.dec[c * p_total + p].to_bits(),
                        pruned.measurements.dec[c * p_total + q].to_bits()
                    );
                }
            }
        }
    }

    /// Pruning participates in the journal fingerprint: rows written
    /// under one mode (pruned slots as zeros) must not be resumed under
    /// the other.
    #[test]
    fn resume_refuses_crossing_prune_modes() {
        let sc = tupl_config();
        let path = temp_journal("prune-cross");
        run_campaign_with(
            &sc,
            &CampaignOptions {
                journal: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let err = match run_campaign_with(
            &sc,
            &CampaignOptions {
                journal: Some(path.clone()),
                resume: true,
                prune: PruneMode::Off,
                ..Default::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("resuming across prune modes must fail"),
        };
        assert!(err.contains("prune mode \"commute\""), "{err}");
        assert!(err.contains("uses \"off\""), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// A pruned campaign resumes byte-identically, same as an unpruned
    /// one — the fill pass runs at aggregation time, on journaled rows
    /// too.
    #[test]
    fn pruned_resume_is_byte_identical() {
        let sc = tupl_config();
        let path = temp_journal("prune-resume");
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            ..Default::default()
        };
        let first = run_campaign_with(&sc, &opts).unwrap();
        assert!(first.prune.pruned_pipelines > 0);
        let resumed = run_campaign_with(
            &sc,
            &CampaignOptions {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resumed.executed_units, 0);
        assert_bitwise_equal(&first.measurements, &resumed.measurements);
        std::fs::remove_file(&path).ok();
    }

    /// Space with real canonical pruning: TCMS/TCNB are zero-fixing
    /// pointwise bijections, so the abstract interpreter drops them
    /// before the zero-pattern RZE reducers and swaps them past TUPL
    /// permutations — exact- and pattern-tier certificates both fire.
    fn canonical_config() -> StudyConfig {
        let mut sc = StudyConfig::quick();
        sc.space = Space::restricted_to_families(&["TCMS", "TCNB", "TUPL", "RZE"]);
        sc.files = vec![&SP_FILES[0], &SP_FILES[10]];
        sc
    }

    /// Canonical pruning changes nothing it didn't prove: compressed
    /// sizes are bitwise identical to full enumeration *everywhere*
    /// (that is the certificate's claim), non-pruned slots are bitwise
    /// identical in throughput too, and sampled equivalence classes
    /// really do produce identical measurements across members in the
    /// full run.
    #[test]
    fn canonical_and_full_enumeration_agree() {
        let sc = canonical_config();
        let canonical = run_campaign_with(
            &sc,
            &CampaignOptions {
                prune: PruneMode::Canonical,
                ..Default::default()
            },
        )
        .unwrap();
        let full = run_campaign_with(
            &sc,
            &CampaignOptions {
                prune: PruneMode::Off,
                ..Default::default()
            },
        )
        .unwrap();

        let plan = PrunePlan::for_space(&sc.space, PruneMode::Canonical);
        assert!(!plan.cell_dups.is_empty(), "space must actually prune");
        assert_eq!(canonical.prune.mode, "canonical");
        assert_eq!(canonical.prune.pruned_pipelines, plan.cell_dups.len());
        assert_eq!(canonical.prune.classes, plan.classes);
        assert_eq!(canonical.prune.class_map, plan.class_map);

        // The certified claim: compressed sizes agree exactly at every
        // slot, pruned or not.
        assert_eq!(
            canonical.measurements.compressed,
            full.measurements.compressed
        );
        assert_eq!(
            canonical.measurements.total_uncompressed,
            full.measurements.total_uncompressed
        );

        // Non-pruned slots are untouched by the mode: bitwise-equal
        // throughputs. Pruned slots carry the representative's numbers
        // (verified below), not the member's own.
        let p_total = sc.space.len();
        let c_total = canonical.measurements.configs.len();
        for p in 0..p_total {
            if plan.skips_cell(p) {
                continue;
            }
            for c in 0..c_total {
                let i = c * p_total + p;
                assert_eq!(
                    canonical.measurements.enc[i].to_bits(),
                    full.measurements.enc[i].to_bits(),
                    "enc differs at non-pruned slot {p}"
                );
                assert_eq!(
                    canonical.measurements.dec[i].to_bits(),
                    full.measurements.dec[i].to_bits(),
                    "dec differs at non-pruned slot {p}"
                );
            }
        }

        // Pruned slots are exact copies of their representative.
        for cd in &plan.cell_dups {
            assert_eq!(
                canonical.measurements.compressed[cd.pruned],
                canonical.measurements.compressed[cd.representative]
            );
            for c in 0..c_total {
                assert_eq!(
                    canonical.measurements.enc[c * p_total + cd.pruned].to_bits(),
                    canonical.measurements.enc[c * p_total + cd.representative].to_bits()
                );
                assert_eq!(
                    canonical.measurements.dec[c * p_total + cd.pruned].to_bits(),
                    canonical.measurements.dec[c * p_total + cd.representative].to_bits()
                );
            }
        }

        // Property check on sampled equivalence classes: in the *full*
        // (unpruned) run, every member of a class compresses to exactly
        // the representative's sizes — the equivalence is real, not an
        // artifact of the fill-in.
        let mut sampled = 0usize;
        for cd in plan.cell_dups.iter().step_by(7) {
            assert_eq!(
                full.measurements.compressed[cd.pruned],
                full.measurements.compressed[cd.representative],
                "class member {} diverges from representative {} in the full run",
                cd.pruned,
                cd.representative
            );
            sampled += 1;
        }
        assert!(sampled >= 10, "sampled too few classes ({sampled})");
    }

    /// A canonical campaign resumes byte-identically and its journal
    /// meta pins the class-map fingerprint.
    #[test]
    fn canonical_resume_is_byte_identical() {
        let sc = canonical_config();
        let path = temp_journal("canonical-resume");
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            prune: PruneMode::Canonical,
            ..Default::default()
        };
        let first = run_campaign_with(&sc, &opts).unwrap();
        assert!(first.prune.pruned_pipelines > 0);

        let j = journal::load(&path).unwrap();
        assert_eq!(
            j.meta.get("prune").and_then(|v| v.as_str()),
            Some("canonical")
        );
        let plan = PrunePlan::for_space(&sc.space, PruneMode::Canonical);
        assert_eq!(
            j.meta.get("class_map").and_then(|v| v.as_str()),
            Some(format!("{:016x}", plan.class_map).as_str())
        );

        let resumed = run_campaign_with(
            &sc,
            &CampaignOptions {
                resume: true,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(resumed.executed_units, 0);
        assert_bitwise_equal(&first.measurements, &resumed.measurements);
        std::fs::remove_file(&path).ok();
    }

    /// Satellite guarantee: a canonical journal refuses to resume under
    /// commute mode (and names both modes in the error).
    #[test]
    fn canonical_journal_refuses_commute_resume() {
        let sc = canonical_config();
        let path = temp_journal("canonical-cross");
        run_campaign_with(
            &sc,
            &CampaignOptions {
                journal: Some(path.clone()),
                prune: PruneMode::Canonical,
                ..Default::default()
            },
        )
        .unwrap();
        let err = match run_campaign_with(
            &sc,
            &CampaignOptions {
                journal: Some(path.clone()),
                resume: true,
                prune: PruneMode::Commute,
                ..Default::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("canonical journal must not resume under commute"),
        };
        assert!(err.contains("prune mode \"canonical\""), "{err}");
        assert!(err.contains("uses \"commute\""), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unit_records_carry_timing() {
        let sc = tiny_config();
        let path = temp_journal("timing");
        let opts = CampaignOptions {
            journal: Some(path.clone()),
            ..Default::default()
        };
        run_campaign_with(&sc, &opts).unwrap();
        let j = journal::load(&path).unwrap();
        assert!(!j.units.is_empty());
        for u in &j.units {
            let t = timing_from_value(u).expect("unit record has timing");
            // Stage time cannot exceed the unit's wall time (ms rounding
            // can make tiny units report 0 everywhere, which is fine).
            assert!(t.stage_ms.iter().sum::<u64>() <= t.elapsed_ms.max(1) * 2);
        }
        std::fs::remove_file(&path).ok();
    }
}
