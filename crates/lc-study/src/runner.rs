//! Stage runner: executes one component over chunked data with LC's
//! copy-on-expand semantics, collecting encode *and* decode kernel
//! statistics (and optionally verifying the round-trip as it goes).
//!
//! The measurement campaign runs the pipeline *tree* rather than each of
//! the 107,632 pipelines end-to-end: pipelines sharing a stage prefix
//! share the transformed data, so per input file only
//! 62 + 62² + 62²·(28 reducers) distinct stage executions are needed, and
//! a pipeline's cost is the sum of its three stages' costs (kernel
//! statistics are additive per stage by construction).

use std::time::{Duration, Instant};

use lc_core::chunk::CHUNK_SIZE;
use lc_core::{Component, KernelStats};

/// Chunked data flowing between pipeline stages. Chunks stay separate
/// through the whole pipeline (each is one thread block's private data;
/// they are only concatenated in the final archive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedData {
    /// Per-chunk byte buffers.
    pub chunks: Vec<Vec<u8>>,
}

impl ChunkedData {
    /// Split a byte stream into 16 kB chunks.
    pub fn from_bytes(data: &[u8]) -> Self {
        Self {
            chunks: data.chunks(CHUNK_SIZE).map(|c| c.to_vec()).collect(),
        }
    }

    /// Total payload bytes across chunks.
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.len() as u64).sum()
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

/// Result of running one component over all chunks of a stage input.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// The stage's output data (input of the next stage).
    pub output: ChunkedData,
    /// Encoder kernel statistics, summed over chunks where the stage ran.
    pub enc: KernelStats,
    /// Decoder kernel statistics — zero contribution from chunks where
    /// copy-on-expand skipped the stage (the decoder does no work there;
    /// paper §6.4).
    pub dec: KernelStats,
    /// Chunks the stage was applied to.
    pub applied: u64,
    /// Chunks where the reducer expanded and was skipped.
    pub skipped: u64,
}

/// Chunks per [`lc_core::encode_stage_batch`] call: enough to amortize
/// dispatch and telemetry per batch, small enough that the batch working
/// set (64 × 16 kB in and out) stays cache-resident.
const STAGE_BATCH: usize = 64;

/// Run `component` over every chunk of `input`, [`STAGE_BATCH`] chunks
/// per batched kernel call.
///
/// Reducers are skipped per chunk unless they strictly shrink it
/// (copy-on-expand). When `verify` is set, every applied chunk is decoded
/// back and compared — a fatal mismatch panics, because a non-invertible
/// component invalidates the whole study.
pub fn run_stage(component: &dyn Component, input: &ChunkedData, verify: bool) -> StageOutcome {
    let mut outcome = StageOutcome {
        output: ChunkedData {
            chunks: Vec::with_capacity(input.chunks.len()),
        },
        enc: KernelStats::new(),
        dec: KernelStats::new(),
        applied: 0,
        skipped: 0,
    };
    // Cost-attribution handles, resolved once per stage call so the
    // per-batch hot loop only touches atomics. Campaign sweeps feed the
    // same `component.<name>.{encode,decode}.*` cost centers that serve
    // traffic does, so `lc report` ranks both from one metrics snapshot.
    // The `…kernel.<variant>` counters tag each direction with the SIMD
    // tier (scalar/sse2/avx2) the component's kernels dispatch to, one
    // count per chunk.
    let telemetry = lc_telemetry::active();
    let costs = if telemetry {
        let name = component.name();
        let kernel = component.kernel_variant().label();
        Some((
            lc_telemetry::counter(&format!("component.{name}.encode.bytes")),
            lc_telemetry::histogram(&format!("component.{name}.encode.ns")),
            lc_telemetry::counter(&format!("component.{name}.decode.bytes")),
            lc_telemetry::histogram(&format!("component.{name}.decode.ns")),
            lc_telemetry::counter(&format!("component.{name}.encode.kernel.{kernel}")),
            lc_telemetry::counter(&format!("component.{name}.decode.kernel.{kernel}")),
        ))
    } else {
        None
    };
    let mut enc_bufs: Vec<Vec<u8>> = Vec::new();
    let mut dec_bufs: Vec<Vec<u8>> = Vec::new();
    for batch in input.chunks.chunks(STAGE_BATCH) {
        if enc_bufs.len() < batch.len() {
            enc_bufs.resize_with(batch.len(), || {
                Vec::with_capacity(CHUNK_SIZE + CHUNK_SIZE / 2)
            });
        }
        let refs: Vec<&[u8]> = batch.iter().map(|c| c.as_slice()).collect();
        let t0 = if telemetry { lc_telemetry::now_ns() } else { 0 };
        let applied = lc_core::encode_stage_batch(
            component,
            &refs,
            &mut enc_bufs[..batch.len()],
            &mut outcome.enc,
        );
        if let Some((enc_bytes, enc_ns, _, _, enc_kernel, _)) = &costs {
            // The encode kernel ran even when copy-on-expand discarded
            // its output, so the cost is attributed unconditionally —
            // and exactly once per chunk, regardless of batch geometry.
            enc_bytes.add(batch.iter().map(|c| c.len() as u64).sum());
            enc_ns.record(lc_telemetry::now_ns().saturating_sub(t0));
            enc_kernel.add(batch.len() as u64);
        }
        // One decode call covers every applied chunk of the batch; the
        // skipped chunks contribute no decode stats (paper §6.4: the
        // decoder does no work where copy-on-expand kept the input).
        let dec_refs: Vec<&[u8]> = applied
            .iter()
            .zip(&enc_bufs)
            .filter(|(a, _)| **a)
            .map(|(_, b)| b.as_slice())
            .collect();
        if !dec_refs.is_empty() {
            if dec_bufs.len() < dec_refs.len() {
                dec_bufs.resize_with(dec_refs.len(), || Vec::with_capacity(CHUNK_SIZE));
            }
            let t1 = if telemetry { lc_telemetry::now_ns() } else { 0 };
            lc_core::decode_stage_batch(
                component,
                &dec_refs,
                &mut dec_bufs[..dec_refs.len()],
                &mut outcome.dec,
            )
            .unwrap_or_else(|e| {
                panic!("{} failed to decode its own output: {e}", component.name())
            });
            if let Some((_, _, dec_bytes, dec_ns, _, dec_kernel)) = &costs {
                dec_bytes.add(dec_refs.iter().map(|b| b.len() as u64).sum());
                dec_ns.record(lc_telemetry::now_ns().saturating_sub(t1));
                dec_kernel.add(dec_refs.len() as u64);
            }
        }
        let mut d = 0usize;
        for (i, chunk) in batch.iter().enumerate() {
            if applied[i] {
                outcome.applied += 1;
                if verify {
                    assert_eq!(
                        &dec_bufs[d],
                        chunk,
                        "{} round-trip mismatch on a {}-byte chunk",
                        component.name(),
                        chunk.len()
                    );
                }
                d += 1;
                outcome.output.chunks.push(enc_bufs[i].clone());
            } else {
                outcome.skipped += 1;
                outcome.output.chunks.push(chunk.clone());
            }
        }
    }
    outcome
}

/// A monotonic deadline for one campaign work unit.
///
/// Built on [`Instant`] (the monotonic clock), so wall-clock adjustments
/// cannot spuriously expire — or extend — a unit's budget. The deadline
/// is *cooperative*: it is checked between stage executions (see
/// [`run_stage_checked`]), which is the honest granularity on a thread
/// pool where a stage cannot be interrupted mid-kernel.
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    start: Instant,
    limit: Duration,
}

impl Watchdog {
    /// Arm a watchdog expiring `limit` from now.
    pub fn new(limit: Duration) -> Self {
        Self {
            start: Instant::now(),
            limit,
        }
    }

    /// Time elapsed since the watchdog was armed.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.start.elapsed() > self.limit
    }

    /// The configured limit.
    pub fn limit(&self) -> Duration {
        self.limit
    }
}

/// Why a checked stage execution did not produce an outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageFault {
    /// The component panicked; payload message attached.
    Panic(String),
    /// The unit's watchdog expired before or during this stage.
    DeadlineExceeded {
        /// Elapsed time when the expiry was observed, in milliseconds.
        elapsed_ms: u64,
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
}

impl std::fmt::Display for StageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageFault::Panic(msg) => write!(f, "stage panicked: {msg}"),
            StageFault::DeadlineExceeded {
                elapsed_ms,
                limit_ms,
            } => {
                write!(
                    f,
                    "deadline exceeded: {elapsed_ms} ms elapsed of {limit_ms} ms budget"
                )
            }
        }
    }
}

/// [`run_stage`] behind a panic fence and an optional watchdog.
///
/// A panicking component yields `StageFault::Panic` instead of unwinding
/// through the campaign; an expired watchdog — checked immediately
/// before the stage runs and again after it returns, so an overtime
/// stage is reported even though it could not be interrupted — yields
/// `StageFault::DeadlineExceeded`.
pub fn run_stage_checked(
    component: &dyn Component,
    input: &ChunkedData,
    verify: bool,
    watchdog: Option<&Watchdog>,
) -> Result<StageOutcome, StageFault> {
    let expired = |w: &Watchdog| StageFault::DeadlineExceeded {
        elapsed_ms: w.elapsed().as_millis() as u64,
        limit_ms: w.limit().as_millis() as u64,
    };
    if let Some(w) = watchdog {
        if w.expired() {
            return Err(expired(w));
        }
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_stage(component, input, verify)
    }))
    .map_err(|payload| StageFault::Panic(lc_parallel::panic_message(payload.as_ref())))?;
    if let Some(w) = watchdog {
        if w.expired() {
            return Err(expired(w));
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::ComponentKind;

    fn comp(name: &str) -> std::sync::Arc<dyn Component> {
        lc_components::lookup(name).expect(name)
    }

    #[test]
    fn chunking_roundtrip() {
        let data: Vec<u8> = (0..CHUNK_SIZE * 2 + 100).map(|i| (i % 255) as u8).collect();
        let c = ChunkedData::from_bytes(&data);
        assert_eq!(c.chunk_count(), 3);
        assert_eq!(c.total_bytes(), data.len() as u64);
        assert_eq!(c.chunks[2].len(), 100);
    }

    #[test]
    fn mutator_always_applies() {
        let data = ChunkedData::from_bytes(&vec![7u8; CHUNK_SIZE * 2]);
        let out = run_stage(comp("TCMS_4").as_ref(), &data, true);
        assert_eq!(out.applied, 2);
        assert_eq!(out.skipped, 0);
        assert_eq!(out.output.total_bytes(), data.total_bytes());
        assert!(!out.dec.is_zero());
    }

    #[test]
    fn reducer_skips_incompressible_chunks() {
        // Random-ish bytes: RLE_4 finds no runs and must be skipped.
        let data: Vec<u8> = (0..CHUNK_SIZE)
            .map(|i| (((i * 2654435761usize) >> 7) % 256) as u8)
            .collect();
        let chunked = ChunkedData::from_bytes(&data);
        let out = run_stage(comp("RLE_4").as_ref(), &chunked, true);
        assert_eq!(out.skipped, 1);
        assert_eq!(out.applied, 0);
        // Skipped chunk: output is the input, decoder does nothing.
        assert_eq!(out.output.chunks[0], data);
        assert!(out.dec.is_zero());
    }

    #[test]
    fn reducer_applies_on_compressible_chunks() {
        let data = vec![0u8; CHUNK_SIZE];
        let chunked = ChunkedData::from_bytes(&data);
        let out = run_stage(comp("RZE_4").as_ref(), &chunked, true);
        assert_eq!(out.applied, 1);
        assert!(out.output.total_bytes() < data.len() as u64);
        assert!(!out.dec.is_zero());
    }

    #[test]
    fn mixed_chunks_split_between_applied_and_skipped() {
        let mut data = vec![0u8; CHUNK_SIZE]; // compressible chunk
        data.extend((0..CHUNK_SIZE).map(|i| (((i * 2654435761usize) >> 7) % 256) as u8));
        let chunked = ChunkedData::from_bytes(&data);
        let out = run_stage(comp("RZE_4").as_ref(), &chunked, true);
        assert_eq!(out.applied, 1);
        assert_eq!(out.skipped, 1);
    }

    struct PanicComponent;
    impl Component for PanicComponent {
        fn name(&self) -> &'static str {
            "BOOM_1"
        }
        fn kind(&self) -> ComponentKind {
            ComponentKind::Mutator
        }
        fn word_size(&self) -> usize {
            1
        }
        fn complexity(&self) -> lc_core::Complexity {
            lc_core::Complexity::new(
                lc_core::WorkClass::N,
                lc_core::SpanClass::Const,
                lc_core::WorkClass::N,
                lc_core::SpanClass::Const,
            )
        }
        fn encode_chunk(&self, _: &[u8], _: &mut Vec<u8>, _: &mut KernelStats) {
            panic!("intentional test panic");
        }
        fn decode_chunk(
            &self,
            _: &[u8],
            _: &mut Vec<u8>,
            _: &mut KernelStats,
        ) -> Result<(), lc_core::DecodeError> {
            Ok(())
        }
    }

    #[test]
    fn checked_stage_catches_panics() {
        let data = ChunkedData::from_bytes(&[1, 2, 3]);
        let err = run_stage_checked(&PanicComponent, &data, false, None).unwrap_err();
        match err {
            StageFault::Panic(msg) => assert!(msg.contains("intentional"), "{msg}"),
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn checked_stage_matches_unchecked_on_success() {
        let data = ChunkedData::from_bytes(&vec![7u8; CHUNK_SIZE]);
        let a = run_stage(comp("TCMS_4").as_ref(), &data, true);
        let b = run_stage_checked(comp("TCMS_4").as_ref(), &data, true, None).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.applied, b.applied);
    }

    #[test]
    fn expired_watchdog_aborts_before_running() {
        let data = ChunkedData::from_bytes(&vec![7u8; CHUNK_SIZE]);
        let w = Watchdog::new(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let err = run_stage_checked(comp("TCMS_4").as_ref(), &data, false, Some(&w)).unwrap_err();
        assert!(
            matches!(err, StageFault::DeadlineExceeded { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn generous_watchdog_does_not_interfere() {
        let data = ChunkedData::from_bytes(&vec![7u8; CHUNK_SIZE]);
        let w = Watchdog::new(Duration::from_secs(3600));
        assert!(run_stage_checked(comp("TCMS_4").as_ref(), &data, true, Some(&w)).is_ok());
    }

    #[test]
    fn batched_stage_stats_match_per_chunk_singles() {
        // A batch spanning many chunks with a mix of applied and skipped
        // (copy-on-expand) chunks must account *exactly* the stats a
        // chunk-at-a-time loop would: discarded stages count once, and
        // skipped chunks contribute no decode stats.
        let mut data = vec![0u8; CHUNK_SIZE]; // compressible
        data.extend((0..CHUNK_SIZE).map(|i| (((i * 2654435761usize) >> 7) % 256) as u8));
        data.extend(vec![7u8; CHUNK_SIZE]); // compressible (repeats)
        data.extend((0..CHUNK_SIZE / 2).map(|i| (i % 251) as u8));
        let chunked = ChunkedData::from_bytes(&data);
        for name in ["RZE_4", "RLE_1", "TCMS_4", "BIT_4", "DIFF_4"] {
            let c = comp(name);
            let batched = run_stage(c.as_ref(), &chunked, true);
            let mut enc = KernelStats::new();
            let mut dec = KernelStats::new();
            let mut enc_buf = Vec::new();
            let mut dec_buf = Vec::new();
            let mut singles = Vec::new();
            for chunk in &chunked.chunks {
                if lc_core::encode_stage(c.as_ref(), chunk, &mut enc_buf, &mut enc) {
                    lc_core::decode_stage(c.as_ref(), &enc_buf, &mut dec_buf, &mut dec).unwrap();
                    singles.push(enc_buf.clone());
                } else {
                    singles.push(chunk.clone());
                }
            }
            assert_eq!(batched.enc, enc, "{name} encode stats");
            assert_eq!(batched.dec, dec, "{name} decode stats");
            assert_eq!(batched.output.chunks, singles, "{name} bytes");
        }
    }

    #[test]
    fn stage_chaining_preserves_roundtrip() {
        // Chain BIT_4 → DIFF_4 → RZE_4 manually through the runner and
        // verify each stage; data survives because verify=true asserts.
        let data: Vec<u8> = (0..CHUNK_SIZE + 123).map(|i| (i / 64) as u8).collect();
        let s0 = ChunkedData::from_bytes(&data);
        let s1 = run_stage(comp("BIT_4").as_ref(), &s0, true);
        let s2 = run_stage(comp("DIFF_4").as_ref(), &s1.output, true);
        let _s3 = run_stage(comp("RZE_4").as_ref(), &s2.output, true);
    }
}
