//! Contract-driven pipeline-space pruning.
//!
//! The analyzer's commutation verdicts ([`lc_core::Contract::commutes_with`])
//! identify unordered stage pairs `{A, B}` for which the pipelines
//! `(A, B, R)` and `(B, A, R)` are provably equivalent: both stages are
//! size-preserving, one is a pointwise word map and the other a word
//! permutation whose field size the map's word size divides, and both
//! have length-only kernel statistics — so the composed stage output,
//! the compressed size, and the simulated stage times are identical in
//! either order. Measuring both orders is redundant; the campaign can
//! measure the canonical order once and copy the numbers.
//!
//! [`PrunePlan::for_space`] enumerates the commuting pairs among a
//! space's components once, up front, from the contracts alone (no
//! encode runs — the differential evidence lives in `lc-analyze` and CI).
//! The campaign then skips every pruned `(s1, s2)` row inside its work
//! units and, after accumulation, copies the representative's finished
//! sums into the pruned slots. The one observable difference is the
//! per-pipeline measurement jitter seed: a pruned slot inherits its
//! representative's simulated run-to-run noise (±0.4%) instead of
//! drawing its own. [`crate::campaign::CampaignOptions::prune`] restores
//! paper-faithful full enumeration ([`PruneMode::Off`]).
//!
//! On the full 62-component registry the plan finds 22 commuting pairs —
//! 22 × 28 reducers = 616 of the 107,632 pipelines (~0.6%) measured for
//! free. The win is structural, not primarily wall-clock: the campaign
//! proves (and telemetry reports, via `campaign.analyze.*`) exactly
//! which part of the paper's enumeration is redundant.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::space::Space;

/// How the campaign treats provably-equivalent pipelines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PruneMode {
    /// Deduplicate pipelines whose first two stages provably commute
    /// (the default). The pruned pipeline's slots are copies of the
    /// representative's measurements.
    #[default]
    Commute,
    /// Paper-faithful full enumeration: measure every pipeline,
    /// including provably-redundant orderings.
    Off,
}

impl PruneMode {
    /// Stable journal/report label for the mode.
    pub fn label(&self) -> &'static str {
        match self {
            PruneMode::Commute => "commute",
            PruneMode::Off => "off",
        }
    }
}

/// One deduplicated stage pair: for every reducer `R`, the pipeline
/// `(pruned.0, pruned.1, R)` is not executed; its measurements are
/// copied from `(representative.0, representative.1, R)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePairDup {
    /// The skipped `(s1, s2)` component positions (`s1 > s2`).
    pub pruned: (usize, usize),
    /// The measured `(s1, s2)` positions — the same unordered pair in
    /// canonical (lower-dense-index) order.
    pub representative: (usize, usize),
}

/// The pruning decisions for one campaign, computed once up front.
#[derive(Debug, Clone)]
pub struct PrunePlan {
    /// The mode the plan was computed under.
    pub mode: PruneMode,
    /// All deduplicated stage pairs (empty when [`PruneMode::Off`]).
    pub dups: Vec<StagePairDup>,
    /// Fast membership: the pruned `(s1, s2)` keys.
    skip: HashSet<(usize, usize)>,
    /// Wall time spent computing the plan.
    pub analysis: Duration,
}

impl PrunePlan {
    /// Enumerate the provably-commuting stage pairs of `space` from the
    /// component contracts. The representative of each unordered pair
    /// `{i, j}` (`i < j`) is `(i, j)` — the ordering with the lower
    /// dense pipeline index — and `(j, i)` is pruned.
    pub fn for_space(space: &Space, mode: PruneMode) -> Self {
        let t0 = Instant::now();
        let mut dups = Vec::new();
        let mut skip = HashSet::new();
        if mode == PruneMode::Commute {
            let contracts: Vec<_> = space.components.iter().map(|c| c.contract()).collect();
            for i in 0..contracts.len() {
                for j in i + 1..contracts.len() {
                    if contracts[i].commutes_with(&contracts[j]) {
                        dups.push(StagePairDup {
                            pruned: (j, i),
                            representative: (i, j),
                        });
                        skip.insert((j, i));
                    }
                }
            }
        }
        Self {
            mode,
            dups,
            skip,
            analysis: t0.elapsed(),
        }
    }

    /// Whether the `(s1, s2)` stage pair is pruned (skipped by the sweep).
    pub fn skips(&self, s1: usize, s2: usize) -> bool {
        self.skip.contains(&(s1, s2))
    }

    /// Number of pipelines the plan removes from a sweep over `nr`
    /// reducers.
    pub fn pruned_pipelines(&self, nr: usize) -> usize {
        self.dups.len() * nr
    }

    /// Snapshot for campaign outcomes and bench reports.
    pub fn report(&self, nr: usize) -> PruneReport {
        PruneReport {
            mode: self.mode.label(),
            commuting_pairs: self.dups.len(),
            pruned_pipelines: self.pruned_pipelines(nr),
            analysis: self.analysis,
        }
    }
}

/// Immutable pruning summary attached to a campaign outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// [`PruneMode::label`] of the plan.
    pub mode: &'static str,
    /// Provably-commuting stage pairs found in the space.
    pub commuting_pairs: usize,
    /// Pipelines deduplicated (`commuting_pairs × reducers`).
    pub pruned_pipelines: usize,
    /// Wall time spent computing the plan.
    pub analysis: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_finds_the_registry_pairs() {
        let plan = PrunePlan::for_space(&Space::full(), PruneMode::Commute);
        // 22 mutator × TUPL pairs; see lc-analyze's registry test for
        // the per-pair derivation.
        assert_eq!(plan.dups.len(), 22);
        assert_eq!(plan.pruned_pipelines(28), 616);
        for d in &plan.dups {
            let (i, j) = d.representative;
            assert!(i < j, "representative must be the canonical order");
            assert_eq!(d.pruned, (j, i));
            assert!(plan.skips(j, i));
            assert!(!plan.skips(i, j), "the representative is never skipped");
        }
    }

    #[test]
    fn off_mode_prunes_nothing() {
        let plan = PrunePlan::for_space(&Space::full(), PruneMode::Off);
        assert!(plan.dups.is_empty());
        assert_eq!(plan.pruned_pipelines(28), 0);
        assert_eq!(plan.report(28).mode, "off");
    }

    #[test]
    fn quick_space_has_no_commuting_pairs() {
        // The tests' quick space (no TUPL) must be unaffected by the
        // default-on pruning: same numbers with or without it.
        let space = Space::restricted_to_families(&["TCMS", "DIFF", "RLE", "RZE"]);
        let plan = PrunePlan::for_space(&space, PruneMode::Commute);
        assert!(plan.dups.is_empty());
    }

    #[test]
    fn report_counts() {
        let plan = PrunePlan::for_space(&Space::full(), PruneMode::Commute);
        let r = plan.report(28);
        assert_eq!(r.mode, "commute");
        assert_eq!(r.commuting_pairs, 22);
        assert_eq!(r.pruned_pipelines, 616);
    }
}
