//! Contract-driven pipeline-space pruning.
//!
//! The analyzer's commutation verdicts ([`lc_core::Contract::commutes_with`])
//! identify unordered stage pairs `{A, B}` for which the pipelines
//! `(A, B, R)` and `(B, A, R)` are provably equivalent: both stages are
//! size-preserving, one is a pointwise word map and the other a word
//! permutation whose field size the map's word size divides, and both
//! have length-only kernel statistics — so the composed stage output,
//! the compressed size, and the simulated stage times are identical in
//! either order. Measuring both orders is redundant; the campaign can
//! measure the canonical order once and copy the numbers.
//!
//! [`PrunePlan::for_space`] enumerates the commuting pairs among a
//! space's components once, up front, from the contracts alone (no
//! encode runs — the differential evidence lives in `lc-analyze` and CI).
//! The campaign then skips every pruned `(s1, s2)` row inside its work
//! units and, after accumulation, copies the representative's finished
//! sums into the pruned slots. The one observable difference is the
//! per-pipeline measurement jitter seed: a pruned slot inherits its
//! representative's simulated run-to-run noise (±0.4%) instead of
//! drawing its own. [`crate::campaign::CampaignOptions::prune`] restores
//! paper-faithful full enumeration ([`PruneMode::Off`]).
//!
//! On the full 62-component registry the plan finds 22 commuting pairs —
//! 22 × 28 reducers = 616 of the 107,632 pipelines (~0.6%) measured for
//! free. The win is structural, not primarily wall-clock: the campaign
//! proves (and telemetry reports, via `campaign.analyze.*`) exactly
//! which part of the paper's enumeration is redundant.
//!
//! # Canonical mode
//!
//! [`PruneMode::Canonical`] goes beyond pairwise commutation: it runs the
//! abstract interpreter ([`lc_analyze::absint::classify`]) over the whole
//! space under the ⊤ input shape, partitioning every pipeline into
//! equivalence classes with a machine-checkable [certificate] per
//! non-representative member. On the full registry that certifies 8,178
//! of the 107,632 pipelines (~7.6%) as redundant — 352 at the *exact*
//! tier (identical composed bytes, a superset relation of the commute
//! pairs under pattern-opaque reducers) and the rest at the *pattern*
//! tier, which guarantees identical reducer **output sizes** (hence
//! identical compressed bytes) but not identical intermediate bytes or
//! stage timings. A canonical-pruned slot therefore inherits its
//! representative's throughput numbers: compression results are exact,
//! timing is the representative's. Use it for ratio-focused studies;
//! the default [`PruneMode::Commute`] keeps the timing claim.
//!
//! Because the skipped set depends on the class map, the map's
//! [fingerprint] is journaled (`class_map` meta field) and resume
//! refuses a journal whose fingerprint differs.
//!
//! [certificate]: lc_analyze::absint::Certificate
//! [fingerprint]: lc_analyze::absint::ClassMap::fingerprint

use std::collections::HashSet;
use std::time::{Duration, Instant};

use lc_analyze::absint::{classify, RuleTable};

use crate::space::Space;

/// How the campaign treats provably-equivalent pipelines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PruneMode {
    /// Deduplicate pipelines whose first two stages provably commute
    /// (the default). The pruned pipeline's slots are copies of the
    /// representative's measurements.
    #[default]
    Commute,
    /// Deduplicate whole equivalence classes from the abstract
    /// interpreter's certified class map: one representative pipeline is
    /// measured per class, members copy its numbers. Compressed sizes
    /// are provably exact; throughput at member slots is the
    /// representative's (pattern-tier members may genuinely time
    /// differently).
    Canonical,
    /// Paper-faithful full enumeration: measure every pipeline,
    /// including provably-redundant orderings.
    Off,
}

impl PruneMode {
    /// Stable journal/report label for the mode.
    pub fn label(&self) -> &'static str {
        match self {
            PruneMode::Commute => "commute",
            PruneMode::Canonical => "canonical",
            PruneMode::Off => "off",
        }
    }

    /// Inverse of [`PruneMode::label`] (CLI flag parsing).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "commute" => Some(PruneMode::Commute),
            "canonical" => Some(PruneMode::Canonical),
            "off" => Some(PruneMode::Off),
            _ => None,
        }
    }
}

/// One deduplicated stage pair: for every reducer `R`, the pipeline
/// `(pruned.0, pruned.1, R)` is not executed; its measurements are
/// copied from `(representative.0, representative.1, R)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagePairDup {
    /// The skipped `(s1, s2)` component positions (`s1 > s2`).
    pub pruned: (usize, usize),
    /// The measured `(s1, s2)` positions — the same unordered pair in
    /// canonical (lower-dense-index) order.
    pub representative: (usize, usize),
}

/// One deduplicated pipeline *cell* (canonical mode): the pipeline at
/// dense index `pruned` is not executed; its measurements are copied
/// from the class representative at dense index `representative`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellDup {
    /// Dense index of the skipped pipeline.
    pub pruned: usize,
    /// Dense index of the measured class representative (always lower
    /// than `pruned` — the representative is the class minimum).
    pub representative: usize,
}

/// The pruning decisions for one campaign, computed once up front.
#[derive(Debug, Clone)]
pub struct PrunePlan {
    /// The mode the plan was computed under.
    pub mode: PruneMode,
    /// All deduplicated stage pairs (non-empty only under
    /// [`PruneMode::Commute`]).
    pub dups: Vec<StagePairDup>,
    /// Fast membership: the pruned `(s1, s2)` keys.
    skip: HashSet<(usize, usize)>,
    /// All deduplicated pipeline cells (non-empty only under
    /// [`PruneMode::Canonical`]).
    pub cell_dups: Vec<CellDup>,
    /// Fast membership: the pruned dense pipeline indices.
    cell_skip: HashSet<usize>,
    /// Equivalence classes the abstract interpreter found (canonical
    /// mode; 0 otherwise).
    pub classes: usize,
    /// [`lc_analyze::absint::ClassMap::fingerprint`] of the class map
    /// the plan was built from (canonical mode; 0 otherwise).
    pub class_map: u64,
    /// Wall time spent computing the plan.
    pub analysis: Duration,
}

impl PrunePlan {
    /// Enumerate the provably-commuting stage pairs of `space` from the
    /// component contracts. The representative of each unordered pair
    /// `{i, j}` (`i < j`) is `(i, j)` — the ordering with the lower
    /// dense pipeline index — and `(j, i)` is pruned.
    pub fn for_space(space: &Space, mode: PruneMode) -> Self {
        let t0 = Instant::now();
        let mut dups = Vec::new();
        let mut skip = HashSet::new();
        let mut cell_dups = Vec::new();
        let mut cell_skip = HashSet::new();
        let mut classes = 0usize;
        let mut class_map = 0u64;
        match mode {
            PruneMode::Commute => {
                let contracts: Vec<_> = space.components.iter().map(|c| c.contract()).collect();
                for i in 0..contracts.len() {
                    for j in i + 1..contracts.len() {
                        if contracts[i].commutes_with(&contracts[j]) {
                            dups.push(StagePairDup {
                                pruned: (j, i),
                                representative: (i, j),
                            });
                            skip.insert((j, i));
                        }
                    }
                }
            }
            PruneMode::Canonical => {
                // ⊤ input shape (`lengths = &[]`): the certificates hold
                // for every chunk length the campaign can feed, and the
                // length-bounded absorb-noop rule never fires.
                let map = classify(&space.components, &space.reducers, &[], &RuleTable::SOUND);
                for cert in &map.certificates {
                    let cd = CellDup {
                        pruned: map.index(cert.member),
                        representative: map.index(cert.representative),
                    };
                    cell_skip.insert(cd.pruned);
                    cell_dups.push(cd);
                }
                classes = map.classes;
                class_map = map.fingerprint();
            }
            PruneMode::Off => {}
        }
        Self {
            mode,
            dups,
            skip,
            cell_dups,
            cell_skip,
            classes,
            class_map,
            analysis: t0.elapsed(),
        }
    }

    /// Whether the `(s1, s2)` stage pair is pruned (skipped by the sweep).
    pub fn skips(&self, s1: usize, s2: usize) -> bool {
        self.skip.contains(&(s1, s2))
    }

    /// Whether the pipeline at dense index `p` is pruned as a certified
    /// class member (canonical mode).
    pub fn skips_cell(&self, p: usize) -> bool {
        self.cell_skip.contains(&p)
    }

    /// Number of pipelines the plan removes from a sweep over `nr`
    /// reducers.
    pub fn pruned_pipelines(&self, nr: usize) -> usize {
        self.dups.len() * nr + self.cell_dups.len()
    }

    /// Snapshot for campaign outcomes and bench reports.
    pub fn report(&self, nr: usize) -> PruneReport {
        PruneReport {
            mode: self.mode.label(),
            commuting_pairs: self.dups.len(),
            pruned_pipelines: self.pruned_pipelines(nr),
            classes: self.classes,
            class_map: self.class_map,
            analysis: self.analysis,
        }
    }
}

/// Immutable pruning summary attached to a campaign outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// [`PruneMode::label`] of the plan.
    pub mode: &'static str,
    /// Provably-commuting stage pairs found in the space.
    pub commuting_pairs: usize,
    /// Pipelines deduplicated (`commuting_pairs × reducers` in commute
    /// mode; certified class members in canonical mode).
    pub pruned_pipelines: usize,
    /// Equivalence classes (canonical mode; 0 otherwise).
    pub classes: usize,
    /// Class-map fingerprint (canonical mode; 0 otherwise).
    pub class_map: u64,
    /// Wall time spent computing the plan.
    pub analysis: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_finds_the_registry_pairs() {
        let plan = PrunePlan::for_space(&Space::full(), PruneMode::Commute);
        // 22 mutator × TUPL pairs; see lc-analyze's registry test for
        // the per-pair derivation.
        assert_eq!(plan.dups.len(), 22);
        assert_eq!(plan.pruned_pipelines(28), 616);
        for d in &plan.dups {
            let (i, j) = d.representative;
            assert!(i < j, "representative must be the canonical order");
            assert_eq!(d.pruned, (j, i));
            assert!(plan.skips(j, i));
            assert!(!plan.skips(i, j), "the representative is never skipped");
        }
    }

    #[test]
    fn off_mode_prunes_nothing() {
        let plan = PrunePlan::for_space(&Space::full(), PruneMode::Off);
        assert!(plan.dups.is_empty());
        assert_eq!(plan.pruned_pipelines(28), 0);
        assert_eq!(plan.report(28).mode, "off");
    }

    #[test]
    fn quick_space_has_no_commuting_pairs() {
        // The tests' quick space (no TUPL) must be unaffected by the
        // default-on pruning: same numbers with or without it.
        let space = Space::restricted_to_families(&["TCMS", "DIFF", "RLE", "RZE"]);
        let plan = PrunePlan::for_space(&space, PruneMode::Commute);
        assert!(plan.dups.is_empty());
    }

    #[test]
    fn report_counts() {
        let plan = PrunePlan::for_space(&Space::full(), PruneMode::Commute);
        let r = plan.report(28);
        assert_eq!(r.mode, "commute");
        assert_eq!(r.commuting_pairs, 22);
        assert_eq!(r.pruned_pipelines, 616);
        assert_eq!(r.classes, 0);
        assert_eq!(r.class_map, 0);
    }

    #[test]
    fn canonical_full_space_matches_the_certified_census() {
        let space = Space::full();
        let plan = PrunePlan::for_space(&space, PruneMode::Canonical);
        // The absint census on the shipped registry (see lc-analyze's
        // full_space_partition_counts): 107,632 pipelines fall into
        // 99,454 classes, certifying 8,178 members as redundant.
        assert_eq!(plan.classes, 99_454);
        assert_eq!(plan.cell_dups.len(), 8_178);
        assert_eq!(plan.pruned_pipelines(28), 8_178);
        assert!(plan.dups.is_empty(), "canonical mode is cell-level only");
        assert_eq!(plan.class_map, 0x8434_8d3b_115f_203d);
        for cd in &plan.cell_dups {
            assert!(cd.representative < cd.pruned, "rep is the class min");
            assert!(plan.skips_cell(cd.pruned));
            assert!(
                !plan.skips_cell(cd.representative),
                "a representative is never itself pruned"
            );
        }
        // Canonical subsumes commutation: every commute-pruned pipeline
        // is also a certified class member.
        let commute = PrunePlan::for_space(&space, PruneMode::Commute);
        let nc = space.components.len();
        let nr = space.reducers.len();
        for d in &commute.dups {
            let (j, i) = d.pruned;
            for r in 0..nr {
                let p = (j * nc + i) * nr + r;
                assert!(plan.skips_cell(p), "commute dup {p} not canonical-pruned");
            }
        }
    }

    #[test]
    fn canonical_restricted_space_prunes_and_fingerprints() {
        let space = Space::restricted_to_families(&["TCMS", "TCNB", "TUPL", "RZE"]);
        let plan = PrunePlan::for_space(&space, PruneMode::Canonical);
        assert!(!plan.cell_dups.is_empty(), "bijection drops must fire");
        assert!(plan.classes > 0);
        assert_ne!(plan.class_map, 0);
        let r = plan.report(space.reducers.len());
        assert_eq!(r.mode, "canonical");
        assert_eq!(r.pruned_pipelines, plan.cell_dups.len());
        // Deterministic: same space, same fingerprint.
        let again = PrunePlan::for_space(&space, PruneMode::Canonical);
        assert_eq!(plan.class_map, again.class_map);
    }
}
