//! Distribution summaries: letter-value ("boxen") statistics, medians, and
//! geometric means.
//!
//! The paper presents every figure as boxen plots (letter-value plots,
//! Hofmann, Wickham & Kafadar 2017): the distribution is recursively
//! halved around the median — the widest box holds the middle 50%, the
//! next two boxes the next 25%, and so on — with the outlier rate fixed at
//! 0.7% (paper §6). [`letter_values`] computes exactly that summary, which
//! the figure generators print as the textual equivalent of each plot.

/// Letter-value summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LetterValues {
    /// Sample size.
    pub n: usize,
    /// Median (the innermost letter value).
    pub median: f64,
    /// Successive (lower, upper) letter-value pairs: fourths (the widest
    /// box, middle 50%), eighths, sixteenths, … outermost last.
    pub boxes: Vec<(f64, f64)>,
    /// Sample values below the outermost lower letter value.
    pub outliers_low: usize,
    /// Sample values above the outermost upper letter value.
    pub outliers_high: usize,
    /// Sample minimum.
    pub min: f64,
    /// Sample maximum.
    pub max: f64,
}

/// Fixed outlier rate of the paper's plots (0.7% total, §6).
pub const OUTLIER_RATE: f64 = 0.007;

fn quantile_sorted(sorted: &[f64], depth: f64) -> f64 {
    // `depth` is a 1-based (possibly fractional) rank from the low end.
    let idx = depth - 1.0;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if hi >= sorted.len() {
        return sorted[sorted.len() - 1];
    }
    let frac = idx - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Compute the letter-value summary of `values` (need not be sorted).
///
/// ```
/// let vals: Vec<f64> = (1..=100).map(f64::from).collect();
/// let lv = lc_study::stats::letter_values(&vals);
/// assert_eq!(lv.median, 50.5);
/// let (q1, q3) = lv.fourths();
/// assert!(q1 < lv.median && lv.median < q3);
/// ```
///
/// Halving continues until either the depth reaches the extremes or the
/// expected tail fraction beyond the next letter value drops below
/// [`OUTLIER_RATE`] / 2 per side, mirroring the paper's fixed 0.7% outlier
/// rate.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn letter_values(values: &[f64]) -> LetterValues {
    assert!(!values.is_empty(), "letter_values of an empty sample");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN throughputs")); // invariant: throughputs are finite
    let n = sorted.len();
    let median_depth = (n as f64 + 1.0) / 2.0;
    let median = quantile_sorted(&sorted, median_depth);

    let mut boxes = Vec::new();
    let mut depth = median_depth;
    loop {
        depth = (depth.floor() + 1.0) / 2.0;
        if depth < 1.5 {
            break; // next letter value would be the extremes
        }
        let lower = quantile_sorted(&sorted, depth);
        let upper = quantile_sorted(&sorted, n as f64 + 1.0 - depth);
        boxes.push((lower, upper));
        // Expected tail beyond this letter value: (depth-1)/n per side.
        if (depth - 1.0) / n as f64 <= OUTLIER_RATE / 2.0 {
            break;
        }
    }

    let (fence_lo, fence_hi) = boxes.last().copied().unwrap_or((median, median));
    let outliers_low = sorted.iter().take_while(|&&v| v < fence_lo).count();
    let outliers_high = sorted.iter().rev().take_while(|&&v| v > fence_hi).count();
    LetterValues {
        n,
        median,
        boxes,
        outliers_low,
        outliers_high,
        min: sorted[0],
        max: sorted[n - 1],
    }
}

impl LetterValues {
    /// The middle-50% box (first letter-value pair).
    pub fn fourths(&self) -> (f64, f64) {
        self.boxes
            .first()
            .copied()
            .unwrap_or((self.median, self.median))
    }

    /// Skewness indicator used in the paper's prose: > 0 when the upper
    /// half of the middle box is shorter than the lower half, i.e. the
    /// distribution "skews towards higher throughputs" (§6.1).
    pub fn upward_skew(&self) -> f64 {
        let (lo, hi) = self.fourths();
        let below = self.median - lo;
        let above = hi - self.median;
        if below + above == 0.0 {
            0.0
        } else {
            (below - above) / (below + above)
        }
    }

    /// One-line rendering: `median [q25, q75] (n=…, outliers=…)`.
    pub fn render(&self) -> String {
        let (lo, hi) = self.fourths();
        format!(
            "median {:8.1} [{:8.1}, {:8.1}] n={} outliers={}",
            self.median,
            lo,
            hi,
            self.n,
            self.outliers_low + self.outliers_high
        )
    }
}

/// Median of a slice (not necessarily sorted).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN")); // invariant: inputs are finite
    quantile_sorted(&sorted, (sorted.len() as f64 + 1.0) / 2.0)
}

/// Geometric mean (the paper's cross-input aggregate, §5).
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn geometric_mean_known_values() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn letter_values_uniform() {
        let vals: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let lv = letter_values(&vals);
        assert!((lv.median - 500.5).abs() < 1e-9);
        let (q1, q3) = lv.fourths();
        assert!((q1 - 250.0).abs() < 2.0, "{q1}");
        assert!((q3 - 751.0).abs() < 2.0, "{q3}");
        assert!(
            lv.boxes.len() >= 4,
            "1000 points → several boxes: {}",
            lv.boxes.len()
        );
        // Uniform: symmetric.
        assert!(lv.upward_skew().abs() < 0.02);
    }

    #[test]
    fn letter_values_boxes_are_nested() {
        let vals: Vec<f64> = (0..5000).map(|i| ((i * 37) % 997) as f64).collect();
        let lv = letter_values(&vals);
        for w in lv.boxes.windows(2) {
            assert!(w[1].0 <= w[0].0, "lower letter values decrease outward");
            assert!(w[1].1 >= w[0].1, "upper letter values increase outward");
        }
        assert!(lv.min <= lv.boxes.last().unwrap().0);
        assert!(lv.max >= lv.boxes.last().unwrap().1);
    }

    #[test]
    fn letter_values_outlier_rate_near_0_7_percent() {
        let vals: Vec<f64> = (1..=100_000).map(|i| i as f64).collect();
        let lv = letter_values(&vals);
        let rate = (lv.outliers_low + lv.outliers_high) as f64 / lv.n as f64;
        assert!(rate <= 0.008, "outlier rate {rate}");
        assert!(rate > 0.0005, "outlier rate {rate} suspiciously low");
    }

    #[test]
    fn letter_values_single_value() {
        let lv = letter_values(&[7.0]);
        assert_eq!(lv.median, 7.0);
        assert_eq!(lv.outliers_low + lv.outliers_high, 0);
    }

    #[test]
    fn letter_values_two_values() {
        let lv = letter_values(&[1.0, 3.0]);
        assert_eq!(lv.median, 2.0);
        assert_eq!(lv.min, 1.0);
        assert_eq!(lv.max, 3.0);
    }

    #[test]
    fn skew_detects_asymmetry() {
        // Dense top half, stretched bottom half (decoding-like shape that
        // "skews towards higher throughputs"): the asymmetry must show up
        // inside the middle 50% box.
        let mut vals: Vec<f64> = (0..500).map(|i| 990.0 + (i % 10) as f64).collect();
        vals.extend((0..500).map(|i| i as f64 * 1.98));
        let lv = letter_values(&vals);
        assert!(lv.upward_skew() > 0.2, "skew {}", lv.upward_skew());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn letter_values_empty_panics() {
        letter_values(&[]);
    }

    #[test]
    fn render_contains_median_and_n() {
        let lv = letter_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = lv.render();
        assert!(s.contains("n=5"), "{s}");
        assert!(s.contains("median"), "{s}");
    }
}
