//! Textual regeneration of the paper's tables (1–5).
//!
//! Figures 2–15 are produced by [`crate::figures`]; the static tables are
//! reproduced here directly from the registry, the complexity metadata,
//! the dataset descriptors, and the GPU spec constants — so a diff against
//! the paper is a diff against the code that drives the whole study.

use gpu_sim::{GpuSpec, Vendor, ALL_GPUS};
use lc_core::component::family_of;
use lc_core::{ComponentKind, SpanClass, WorkClass};

/// Table 1: the component list by category.
pub fn table1() -> String {
    let mut out = String::from("Table 1: List of LC components by category\n");
    let mut columns: Vec<(ComponentKind, Vec<&'static str>)> = ComponentKind::ALL
        .iter()
        .map(|&k| (k, Vec::new()))
        .collect();
    for c in lc_components::all() {
        let fam = family_of(c.name());
        let col = &mut columns.iter_mut().find(|(k, _)| *k == c.kind()).unwrap().1; // invariant: every kind has a column
        if !col.contains(&fam) {
            col.push(fam);
        }
    }
    out.push_str(&format!(
        "{:10} {:10} {:10} {:10}\n",
        "Mutators", "Shufflers", "Predictors", "Reducers"
    ));
    let rows = columns.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for r in 0..rows {
        for (_, col) in &columns {
            let cell = col.get(r).copied().unwrap_or("");
            out.push_str(&format!("{cell:10} "));
        }
        out.push('\n');
    }
    out
}

fn work_str(w: WorkClass) -> &'static str {
    match w {
        WorkClass::N => "n",
        WorkClass::NLogW => "n log w",
    }
}

fn span_str(s: SpanClass) -> &'static str {
    match s {
        SpanClass::Const => "1",
        SpanClass::LogW => "log w",
        SpanClass::LogN => "log n",
    }
}

/// Table 2: work/span per family, from the components' declared metadata.
pub fn table2() -> String {
    let mut out = String::from("Table 2: Component work complexity and span (big-O)\n");
    out.push_str(&format!(
        "{:10} {:>9} {:>9} {:>9} {:>9}\n",
        "family", "enc work", "enc span", "dec work", "dec span"
    ));
    let mut seen = Vec::new();
    for c in lc_components::all() {
        let fam = family_of(c.name());
        if seen.contains(&fam) {
            continue;
        }
        seen.push(fam);
        let cx = c.complexity();
        out.push_str(&format!(
            "{:10} {:>9} {:>9} {:>9} {:>9}\n",
            fam,
            work_str(cx.enc_work),
            span_str(cx.enc_span),
            work_str(cx.dec_work),
            span_str(cx.dec_span),
        ));
    }
    out
}

/// Table 3: the SP dataset.
pub fn table3() -> String {
    let mut out = String::from("Table 3: SP dataset\n");
    out.push_str(&format!("{:14} {:>10}\n", "file", "size (MB)"));
    for f in &lc_data::SP_FILES {
        out.push_str(&format!(
            "{:14} {:>10.1}\n",
            f.name,
            f.paper_size_tenth_mb as f64 / 10.0
        ));
    }
    out.push_str(&format!(
        "{:14} {:>10.1}\n",
        "total",
        lc_data::paper_total_mb()
    ));
    out
}

fn gpu_table(title: &str, vendor: Vendor) -> String {
    let gpus: Vec<&GpuSpec> = ALL_GPUS
        .iter()
        .filter(|g| g.vendor == vendor)
        .copied()
        .collect();
    let mut out = String::from(title);
    out.push('\n');
    let row = |label: &str, f: &dyn Fn(&GpuSpec) -> String| {
        let mut line = format!("{label:22}");
        for g in &gpus {
            line.push_str(&format!(" {:>12}", f(g)));
        }
        line.push('\n');
        line
    };
    out.push_str(&row("", &|g| g.name.to_string()));
    out.push_str(&row("Clock Freq. (MHz)", &|g| g.clock_mhz.to_string()));
    out.push_str(&row(
        if vendor == Vendor::Nvidia {
            "SMs"
        } else {
            "CUs"
        },
        &|g| g.sms.to_string(),
    ));
    out.push_str(&row("Max Threads per SM/CU", &|g| {
        g.max_threads_per_sm.to_string()
    }));
    out.push_str(&row("Warp Size", &|g| g.warp_size.to_string()));
    out.push_str(&row("Memory (GB)", &|g| g.memory_gb.to_string()));
    out.push_str(&row(
        if vendor == Vendor::Nvidia {
            "Compute Capability"
        } else {
            "Target Processor"
        },
        &|g| g.arch.to_string(),
    ));
    out
}

/// Table 4: NVIDIA GPU specifications.
pub fn table4() -> String {
    gpu_table("Table 4: NVIDIA GPU specifications", Vendor::Nvidia)
}

/// Table 5: AMD GPU specifications.
pub fn table5() -> String {
    gpu_table("Table 5: AMD GPU specifications", Vendor::Amd)
}

/// All five tables concatenated.
pub fn all_tables() -> String {
    [table1(), table2(), table3(), table4(), table5()].join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_16_families_in_their_columns() {
        let t = table1();
        for fam in ["DBEFS", "BIT", "TUPL", "DIFF", "CLOG", "RZE"] {
            assert!(t.contains(fam), "{t}");
        }
        // Reducer column is the longest: 7 families.
        assert!(t.lines().count() >= 7 + 2);
    }

    #[test]
    fn table2_matches_paper_rows() {
        let t = table2();
        assert!(t.contains("BIT"), "{t}");
        // BIT is the only n log w row.
        let bit_row = t.lines().find(|l| l.starts_with("BIT")).unwrap();
        assert!(bit_row.contains("n log w"), "{bit_row}");
        let rle_row = t.lines().find(|l| l.starts_with("RLE")).unwrap();
        assert!(
            rle_row.trim_end().ends_with('1'),
            "RLE dec span is 1: {rle_row}"
        );
    }

    #[test]
    fn table3_totals_and_smallest() {
        let t = table3();
        assert!(t.contains("obs_info"));
        assert!(t.contains("9.5"));
        assert!(t.contains("959.4"));
    }

    #[test]
    fn gpu_tables_match_paper_values() {
        let t4 = table4();
        assert!(t4.contains("TITAN V"));
        assert!(t4.contains("2625"), "{t4}");
        let t5 = table5();
        assert!(t5.contains("gfx908"), "{t5}");
        assert!(t5.contains("gfx1100"), "{t5}");
    }

    #[test]
    fn all_tables_concatenates_five() {
        let all = all_tables();
        for t in ["Table 1", "Table 2", "Table 3", "Table 4", "Table 5"] {
            assert!(all.contains(t));
        }
    }
}
