//! Campaign progress heartbeat.
//!
//! A campaign at paper scale runs for hours with no output until the
//! first figure prints; the heartbeat is a background thread that writes
//! a one-line progress report to stderr every interval: units finished /
//! planned, throughput in units per second, an ETA extrapolated from the
//! running average, and the quarantine count. Work-unit workers only
//! bump relaxed atomics, so the heartbeat adds no coordination to the
//! campaign hot path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct HeartbeatState {
    done: AtomicUsize,
    quarantined: AtomicUsize,
    stop: AtomicBool,
}

/// Background progress reporter for a campaign run.
///
/// Dropping the heartbeat stops and joins the reporter thread (emitting
/// one final line if any units completed), so it cannot outlive the
/// campaign even on early-error returns.
pub struct Heartbeat {
    state: Arc<HeartbeatState>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Start a reporter thread: `planned` work units are expected this
    /// run; a line is written to stderr every `interval`.
    pub fn start(planned: usize, interval: Duration) -> Self {
        let state = Arc::new(HeartbeatState {
            done: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        let thread_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut next_report = interval;
            loop {
                // Sleep in short steps so Drop never waits a full interval.
                std::thread::sleep(Duration::from_millis(50));
                if thread_state.stop.load(Ordering::Relaxed) {
                    break;
                }
                if t0.elapsed() >= next_report {
                    next_report += interval;
                    eprintln!(
                        "{}",
                        format_line(
                            thread_state.done.load(Ordering::Relaxed),
                            planned,
                            t0.elapsed().as_secs_f64(),
                            thread_state.quarantined.load(Ordering::Relaxed),
                        )
                    );
                }
            }
            let done = thread_state.done.load(Ordering::Relaxed);
            if done > 0 {
                eprintln!(
                    "{}",
                    format_line(
                        done,
                        planned,
                        t0.elapsed().as_secs_f64(),
                        thread_state.quarantined.load(Ordering::Relaxed),
                    )
                );
            }
        });
        Self {
            state,
            handle: Some(handle),
        }
    }

    /// Record one finished work unit (healthy or quarantined).
    pub fn unit_done(&self) {
        self.state.done.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one quarantined work unit (in addition to [`unit_done`]).
    ///
    /// [`unit_done`]: Heartbeat::unit_done
    pub fn unit_quarantined(&self) {
        self.state.quarantined.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Render one progress line, e.g.
/// `heartbeat: 42/160 units (26%), 3.4 units/s, ETA 35s, 1 quarantined`.
pub fn format_line(done: usize, planned: usize, elapsed_secs: f64, quarantined: usize) -> String {
    let pct = (done * 100).checked_div(planned).unwrap_or(100);
    let rate = if elapsed_secs > 0.0 {
        done as f64 / elapsed_secs
    } else {
        0.0
    };
    let eta = if done > 0 && planned > done {
        let remaining = (planned - done) as f64 / rate.max(f64::MIN_POSITIVE);
        format!("ETA {}s", remaining.ceil() as u64)
    } else if done >= planned {
        "done".to_string()
    } else {
        "ETA ?".to_string()
    };
    let mut line = format!("heartbeat: {done}/{planned} units ({pct}%), {rate:.1} units/s, {eta}");
    if quarantined > 0 {
        line.push_str(&format!(", {quarantined} quarantined"));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_line_midway() {
        let line = format_line(40, 160, 10.0, 0);
        assert_eq!(line, "heartbeat: 40/160 units (25%), 4.0 units/s, ETA 30s");
    }

    #[test]
    fn format_line_with_quarantine() {
        let line = format_line(10, 20, 5.0, 3);
        assert!(line.ends_with(", 3 quarantined"), "{line}");
    }

    #[test]
    fn format_line_complete_says_done() {
        let line = format_line(20, 20, 5.0, 0);
        assert!(line.contains("(100%)"), "{line}");
        assert!(line.ends_with("done"), "{line}");
    }

    #[test]
    fn format_line_zero_progress_has_unknown_eta() {
        let line = format_line(0, 50, 2.0, 0);
        assert!(line.contains("ETA ?"), "{line}");
    }

    #[test]
    fn format_line_zero_planned_does_not_divide_by_zero() {
        let line = format_line(0, 0, 1.0, 0);
        assert!(line.contains("0/0 units (100%)"), "{line}");
    }

    #[test]
    fn heartbeat_counts_and_stops() {
        let hb = Heartbeat::start(4, Duration::from_secs(3600));
        hb.unit_done();
        hb.unit_done();
        hb.unit_quarantined();
        assert_eq!(hb.state.done.load(Ordering::Relaxed), 2);
        assert_eq!(hb.state.quarantined.load(Ordering::Relaxed), 1);
        drop(hb); // must join promptly despite the huge interval
    }
}
