//! Append-only campaign journal: checkpoint/resume for `run_campaign_with`.
//!
//! The journal is a JSON-lines file. The first line is a `meta` record
//! fingerprinting the campaign configuration; every subsequent line is
//! either a completed work unit (`unit`, carrying the unit's full
//! numeric results) or a `quarantine` record for a work unit that
//! panicked or overran its deadline.
//!
//! Two properties make resume byte-identical to an uninterrupted run:
//!
//! * numbers are serialized with Rust's shortest-round-trip float
//!   formatting (see `lc_json`), so a value read back from the journal
//!   is bit-identical to the one that was computed;
//! * the campaign accumulates unit rows in a fixed sequential order
//!   regardless of which units came from the journal and which were
//!   recomputed.
//!
//! A process killed mid-write leaves at most one torn final line;
//! [`load`] tolerates exactly that (the unit is simply re-run on resume)
//! but rejects corruption anywhere else.
//!
//! Appends go through [`lc_chaos::fs::DurableFile`]: each record plus
//! its newline is serialized into one buffer and issued as a single
//! `write_all`, so a crash can tear at most the final record — there is
//! no window where a record is on disk without its terminator (the
//! two-syscall window the original `writeln!` + separate flush had).
//! Durability is governed by a [`SyncPolicy`] (`--fsync`):
//! [`JournalWriter::checkpoint`] is the fsync point for the default
//! `checkpoint` policy.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;

use lc_chaos::fs::{DurableFile, SyncPolicy};
use lc_json::Value;

/// Journal format version, bumped on any incompatible record change.
/// Version 2 added per-unit timing (`elapsed_ms`, `stage_ms`) to `unit`
/// and `quarantine` records; v1 journals are refused on resume via the
/// meta fingerprint, so their timing-less quarantine records are never
/// parsed. Version 3 added the `dataset` digest list (and, for shard
/// journals, the `shard` identity) to the meta fingerprint: a v2
/// journal carries no proof of which input bytes its rows measured, so
/// it is refused rather than trusted across the upgrade.
pub const JOURNAL_VERSION: u64 = 3;

/// Serializer half: appends one complete line per record via a single
/// crash-consistent `write_all`.
pub struct JournalWriter {
    inner: Mutex<DurableFile>,
}

impl JournalWriter {
    /// Start a fresh journal at `path`, writing the `meta` line.
    pub fn create(path: &Path, meta: &Value, policy: SyncPolicy) -> Result<Self, String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            }
        }
        let file = DurableFile::create(path, policy)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        let w = Self {
            inner: Mutex::new(file),
        };
        w.append(meta)?;
        Ok(w)
    }

    /// Reopen an existing journal for appending (resume), discarding
    /// everything past `valid_len` — the validated prefix reported by
    /// [`load`]. Truncation is what keeps a torn tail from a previous
    /// kill from fusing with the first record appended after resume.
    pub fn resume(path: &Path, valid_len: u64, policy: SyncPolicy) -> Result<Self, String> {
        let io = |e: std::io::Error| format!("cannot reposition journal {}: {e}", path.display());
        // Pre-repair pass: clamp to the file's real length (valid_len
        // can exceed it by one when the final good record lost only its
        // newline) and restore that newline so the next append starts on
        // a fresh line.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot reopen journal {}: {e}", path.display()))?;
        let mut len = file.metadata().map_err(io)?.len().min(valid_len);
        file.set_len(len).map_err(io)?;
        if len > 0 {
            file.seek(SeekFrom::End(-1)).map_err(io)?;
            let mut last = [0u8; 1];
            std::io::Read::read_exact(&mut file, &mut last).map_err(io)?;
            if last[0] != b'\n' {
                file.write_all(b"\n").map_err(io)?;
                len += 1;
            }
        }
        drop(file);
        let file = DurableFile::resume(path, len, policy).map_err(io)?;
        Ok(Self {
            inner: Mutex::new(file),
        })
    }

    /// Append one record as a single `record + '\n'` buffer in one
    /// `write_all`: a crash mid-append can only leave a torn tail, never
    /// a record without its terminator followed by another record.
    ///
    /// Callable from multiple pool workers; the mutex keeps lines whole.
    pub fn append(&self, record: &Value) -> Result<(), String> {
        let mut buf = record.dump();
        buf.push('\n');
        self.lock()?
            .append(buf.as_bytes())
            .map_err(|e| format!("journal write failed: {e}"))
    }

    /// Durability barrier (fsync under the `checkpoint`/`always`
    /// policies): called after each completed input file and at campaign
    /// end or interrupt.
    pub fn checkpoint(&self) -> Result<(), String> {
        self.lock()?
            .checkpoint()
            .map_err(|e| format!("journal checkpoint failed: {e}"))
    }

    fn lock(&self) -> Result<std::sync::MutexGuard<'_, DurableFile>, String> {
        self.inner
            .lock()
            .map_err(|_| "journal writer poisoned".to_string())
    }
}

/// Parsed journal contents.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The fingerprint line.
    pub meta: Value,
    /// Completed work-unit records, in file order.
    pub units: Vec<Value>,
    /// Quarantine records, in file order.
    pub quarantined: Vec<Value>,
    /// Byte length of the validated prefix (every good line including its
    /// newline; a torn tail is excluded). Pass to [`JournalWriter::resume`]
    /// so appends start after the last good record.
    pub valid_len: u64,
    /// Bytes of torn tail past the validated prefix (0 for a clean
    /// journal). Nonzero means a previous run died mid-append; resume
    /// reports it as a warning and truncates.
    pub torn_bytes: u64,
}

/// Load and validate a journal file.
///
/// A torn (unparseable or record-less) **final** line is tolerated — it
/// is the expected artifact of a kill mid-append — and simply dropped.
/// Malformed content anywhere else is an error: it means the file is not
/// a journal or was corrupted, and resuming from it would silently lose
/// work units.
/// True when the file at `path` contains no complete record at all —
/// it is empty, all blank lines, or a single torn line from a crash
/// during the very first append. Such a journal carries nothing to
/// resume from (not even a fingerprint); the caller starts fresh
/// instead of treating it as corruption.
pub fn effectively_empty(path: &Path) -> Result<bool, String> {
    let bytes =
        std::fs::read(path).map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
    let text = String::from_utf8_lossy(&bytes);
    Ok(!text
        .lines()
        .any(|l| !l.trim().is_empty() && Value::parse(l).is_ok_and(|v| v.get("kind").is_some())))
}

pub fn load(path: &Path) -> Result<LoadedJournal, String> {
    let file =
        File::open(path).map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
    let file_len = file
        .metadata()
        .map_err(|e| format!("cannot stat journal {}: {e}", path.display()))?
        .len();
    let reader = BufReader::new(file);
    let mut lines = Vec::new();
    for (ln, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("journal read failed at line {}: {e}", ln + 1))?;
        lines.push(line);
    }
    let mut records: Vec<Value> = Vec::with_capacity(lines.len());
    let last = lines.len().saturating_sub(1);
    let mut offset = 0u64;
    let mut valid_len = 0u64;
    for (ln, line) in lines.iter().enumerate() {
        let end = offset + line.len() as u64 + 1; // the line plus its '\n'
        if line.trim().is_empty() {
            valid_len = end;
            offset = end;
            continue;
        }
        match Value::parse(line) {
            Ok(v) if v.get("kind").is_some() => {
                records.push(v);
                valid_len = end;
            }
            _ if ln == last => {
                // Torn tail from a kill mid-write: drop it (and leave it
                // out of valid_len), the unit will simply be recomputed.
            }
            _ => {
                return Err(format!(
                    "journal {} is corrupt at line {} (not a record)",
                    path.display(),
                    ln + 1
                ));
            }
        }
        offset = end;
    }
    let mut it = records.into_iter();
    let meta = match it.next() {
        Some(v) if v.get("kind").and_then(Value::as_str) == Some("meta") => v,
        _ => {
            return Err(format!(
                "journal {} does not start with a meta record",
                path.display()
            ));
        }
    };
    let mut units = Vec::new();
    let mut quarantined = Vec::new();
    for v in it {
        match v.get("kind").and_then(Value::as_str) {
            Some("unit") => units.push(v),
            Some("quarantine") => quarantined.push(v),
            Some(other) => {
                return Err(format!(
                    "journal {} has a record of unknown kind {other:?}",
                    path.display()
                ));
            }
            None => unreachable!("records without kind were filtered above"),
        }
    }
    Ok(LoadedJournal {
        meta,
        units,
        quarantined,
        valid_len,
        torn_bytes: file_len.saturating_sub(valid_len),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "lc-journal-test-{}-{tag}.jsonl",
            std::process::id()
        ));
        p
    }

    fn meta() -> Value {
        Value::object([
            ("kind", Value::from("meta")),
            ("journal_version", Value::from(JOURNAL_VERSION)),
        ])
    }

    #[test]
    fn roundtrip_meta_and_units() {
        let path = temp_path("roundtrip");
        let w = JournalWriter::create(&path, &meta(), SyncPolicy::default()).unwrap();
        w.append(&Value::object([
            ("kind", Value::from("unit")),
            ("s1_index", Value::from(3u64)),
            (
                "enc",
                Value::array([Value::from(1.5f64), Value::from(-0.25f64)]),
            ),
        ]))
        .unwrap();
        w.append(&Value::object([
            ("kind", Value::from("quarantine")),
            ("s1_index", Value::from(4u64)),
        ]))
        .unwrap();
        drop(w);
        let j = load(&path).unwrap();
        assert_eq!(j.meta.get("kind").and_then(Value::as_str), Some("meta"));
        assert_eq!(j.units.len(), 1);
        assert_eq!(j.quarantined.len(), 1);
        assert_eq!(j.units[0]["enc"][0].as_f64(), Some(1.5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let path = temp_path("torn");
        let w = JournalWriter::create(&path, &meta(), SyncPolicy::default()).unwrap();
        w.append(&Value::object([
            ("kind", Value::from("unit")),
            ("s1_index", Value::from(0u64)),
        ]))
        .unwrap();
        drop(w);
        // Simulate a kill mid-append: half a JSON object, no newline.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"kind\":\"unit\",\"s1_i").unwrap();
        drop(f);
        let j = load(&path).unwrap();
        assert_eq!(j.units.len(), 1, "torn tail dropped, prior unit kept");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_before_the_tail_is_rejected() {
        let path = temp_path("midcorrupt");
        std::fs::write(&path, "{\"kind\":\"meta\"}\nGARBAGE\n{\"kind\":\"unit\"}\n").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_meta_is_rejected() {
        let path = temp_path("nometa");
        std::fs::write(&path, "{\"kind\":\"unit\"}\n").unwrap();
        assert!(load(&path).unwrap_err().contains("meta"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_appends_after_existing_records() {
        let path = temp_path("reopen");
        let w = JournalWriter::create(&path, &meta(), SyncPolicy::default()).unwrap();
        w.append(&Value::object([
            ("kind", Value::from("unit")),
            ("n", Value::from(1u64)),
        ]))
        .unwrap();
        drop(w);
        let j = load(&path).unwrap();
        let w = JournalWriter::resume(&path, j.valid_len, SyncPolicy::default()).unwrap();
        w.append(&Value::object([
            ("kind", Value::from("unit")),
            ("n", Value::from(2u64)),
        ]))
        .unwrap();
        drop(w);
        let j = load(&path).unwrap();
        assert_eq!(j.units.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_truncates_a_torn_tail_before_appending() {
        let path = temp_path("torn-resume");
        let w = JournalWriter::create(&path, &meta(), SyncPolicy::default()).unwrap();
        w.append(&Value::object([
            ("kind", Value::from("unit")),
            ("n", Value::from(1u64)),
        ]))
        .unwrap();
        drop(w);
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"kind\":\"unit\",\"n\":2").unwrap();
        drop(f);
        // Resume must not fuse the next record onto the torn line.
        let j = load(&path).unwrap();
        let w = JournalWriter::resume(&path, j.valid_len, SyncPolicy::default()).unwrap();
        w.append(&Value::object([
            ("kind", Value::from("unit")),
            ("n", Value::from(3u64)),
        ]))
        .unwrap();
        drop(w);
        let j = load(&path).unwrap();
        assert_eq!(j.units.len(), 2);
        assert_eq!(j.units[1]["n"].as_u64(), Some(3));
        std::fs::remove_file(&path).ok();
    }
}
