//! Experiment harness reproducing the paper's evaluation (§5–§6).
//!
//! * [`space`] — the 62 × 62 × 28 pipeline space and each figure's subset;
//! * [`runner`] — stage execution with copy-on-expand and stats capture;
//! * [`campaign`] — the measurement protocol: stage-tree memoization over
//!   the 13 inputs, simulated runtimes on all 11 platform combinations,
//!   median-of-3 runs, geometric mean across inputs;
//! * [`stats`] — letter-value ("boxen") summaries with the paper's fixed
//!   0.7% outlier rate;
//! * [`figures`] — one generator per paper figure (Figs. 2–15);
//! * [`report`] — the EXPERIMENTS.md paper-vs-measured report;
//! * [`shard`] / [`supervise`] — deterministic partitioning of the
//!   campaign into independently journaled shard subprocesses, the
//!   crash-supervising scheduler that retries/quarantines them, and the
//!   byte-identical merge back into one run.
//!
//! The `reproduce` binary drives all of it:
//!
//! ```text
//! cargo run --release -p lc-study --bin reproduce -- --figure all
//! ```

#![forbid(unsafe_code)]

pub mod campaign;
pub mod compare;
pub mod figures;
pub mod journal;
pub mod prefix;
pub mod progress;
pub mod prune;
pub mod ratio;
pub mod report;
pub mod runner;
pub mod shard;
pub mod space;
pub mod stats;
pub mod supervise;
pub mod svg;
pub mod tables;

pub use campaign::{
    run_campaign, run_campaign_with, CampaignOptions, CampaignOutcome, Measurements,
    QuarantineEntry, QuarantineReason, StudyConfig, UnitTiming,
};
pub use figures::{figure, render, to_csv, FigId, Figure, Group};
pub use prefix::{CacheReport, CacheStats, SweepMode, DEFAULT_CACHE_MB};
pub use progress::Heartbeat;
pub use prune::{PruneMode, PrunePlan, PruneReport};
pub use runner::{StageFault, Watchdog};
pub use shard::{discover_shards, merge_shards, MergeReport, ShardSpec};
pub use space::{PipelineId, Space};
pub use supervise::{run_supervisor, ShardOutcome, ShardRun, SupervisorReport};
