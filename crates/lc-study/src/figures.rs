//! Figure generators: one per figure of the paper's evaluation (§6).
//!
//! Each generator selects the figure's pipeline subset, groups it the way
//! the paper's x-axis does, and computes the letter-value summary that the
//! paper draws as a boxen plot. The output is a [`Figure`] that renders to
//! an aligned text table and to CSV (written under `experiments/` by the
//! `reproduce` binary).

use gpu_sim::{CompilerId, Direction, OptLevel, Vendor, ALL_GPUS};
use lc_core::ComponentKind;

use crate::campaign::Measurements;
use crate::space::PipelineId;
use crate::stats::{letter_values, LetterValues};

/// Identifier of a reproducible figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigId {
    /// Encoding throughputs by GPU (Fig. 2).
    Fig2,
    /// Decoding throughputs by GPU (Fig. 3).
    Fig3,
    /// Encoding throughputs by word size (Fig. 4).
    Fig4,
    /// Decoding throughputs by word size (Fig. 5).
    Fig5,
    /// Encoding throughputs by component type (Fig. 6).
    Fig6,
    /// Decoding throughputs by component type (Fig. 7).
    Fig7,
    /// Encoding throughputs by component in stage 1 (Fig. 8).
    Fig8,
    /// Decoding throughputs by component in stage 1 (Fig. 9).
    Fig9,
    /// Decoding throughputs of BIT-led pipelines by word size (Fig. 10).
    Fig10,
    /// Decoding throughputs of RLE-led pipelines by word size (Fig. 11).
    Fig11,
    /// Encoding throughputs by component in stage 3 (Fig. 12).
    Fig12,
    /// Decoding throughputs by component in stage 3 (Fig. 13).
    Fig13,
    /// Encoding speedups from -O1 to -O3 by GPU (Fig. 14).
    Fig14,
    /// Decoding speedups from -O1 to -O3 by GPU (Fig. 15).
    Fig15,
}

impl FigId {
    /// All figures, paper order.
    pub const ALL: [FigId; 14] = [
        FigId::Fig2,
        FigId::Fig3,
        FigId::Fig4,
        FigId::Fig5,
        FigId::Fig6,
        FigId::Fig7,
        FigId::Fig8,
        FigId::Fig9,
        FigId::Fig10,
        FigId::Fig11,
        FigId::Fig12,
        FigId::Fig13,
        FigId::Fig14,
        FigId::Fig15,
    ];

    /// Parse `"2"`, `"fig2"`, `"Fig2"`, ….
    pub fn parse(s: &str) -> Option<FigId> {
        let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
        match digits.as_str() {
            "2" => Some(FigId::Fig2),
            "3" => Some(FigId::Fig3),
            "4" => Some(FigId::Fig4),
            "5" => Some(FigId::Fig5),
            "6" => Some(FigId::Fig6),
            "7" => Some(FigId::Fig7),
            "8" => Some(FigId::Fig8),
            "9" => Some(FigId::Fig9),
            "10" => Some(FigId::Fig10),
            "11" => Some(FigId::Fig11),
            "12" => Some(FigId::Fig12),
            "13" => Some(FigId::Fig13),
            "14" => Some(FigId::Fig14),
            "15" => Some(FigId::Fig15),
            _ => None,
        }
    }

    /// Figure number in the paper.
    pub fn number(&self) -> u32 {
        match self {
            FigId::Fig2 => 2,
            FigId::Fig3 => 3,
            FigId::Fig4 => 4,
            FigId::Fig5 => 5,
            FigId::Fig6 => 6,
            FigId::Fig7 => 7,
            FigId::Fig8 => 8,
            FigId::Fig9 => 9,
            FigId::Fig10 => 10,
            FigId::Fig11 => 11,
            FigId::Fig12 => 12,
            FigId::Fig13 => 13,
            FigId::Fig14 => 14,
            FigId::Fig15 => 15,
        }
    }

    /// Paper caption.
    pub fn title(&self) -> &'static str {
        match self {
            FigId::Fig2 => "Encoding throughputs by GPU",
            FigId::Fig3 => "Decoding throughputs by GPU",
            FigId::Fig4 => "Encoding throughputs by wordsize",
            FigId::Fig5 => "Decoding throughputs by wordsize",
            FigId::Fig6 => "Encoding throughputs by component type",
            FigId::Fig7 => "Decoding throughputs by component type",
            FigId::Fig8 => "Encoding throughputs by component in Stage 1",
            FigId::Fig9 => "Decoding throughputs by component in Stage 1",
            FigId::Fig10 => "Decoding throughputs of pipelines with a BIT component in Stage 1",
            FigId::Fig11 => "Decoding throughputs of pipelines with an RLE component in Stage 1",
            FigId::Fig12 => "Encoding throughputs by component in Stage 3",
            FigId::Fig13 => "Decoding throughputs by component in Stage 3",
            FigId::Fig14 => "Encoding speedups from -O1 to -O3 by GPU",
            FigId::Fig15 => "Decoding speedups from -O1 to -O3 by GPU",
        }
    }
}

/// One box group of a figure (one x position × one compiler color).
#[derive(Debug, Clone)]
pub struct Group {
    /// X-axis group label (GPU name, word size, component type, family…).
    pub group: String,
    /// Compiler legend entry.
    pub compiler: &'static str,
    /// Letter-value summary of the group's distribution.
    pub lv: LetterValues,
}

/// A reproduced figure: letter-value rows per (group, compiler).
#[derive(Debug, Clone)]
pub struct Figure {
    /// Which paper figure this reproduces.
    pub id: FigId,
    /// Unit of the values ("GB/s" or "speedup").
    pub unit: &'static str,
    /// The groups, x-axis order then legend order.
    pub groups: Vec<Group>,
}

fn push_group(
    groups: &mut Vec<Group>,
    m: &Measurements,
    label: &str,
    cfg: usize,
    dir: Direction,
    ids: Option<&[PipelineId]>,
) {
    let values = match ids {
        None => m.series(cfg, dir).to_vec(),
        Some(ids) => m.select(cfg, dir, ids),
    };
    if values.is_empty() {
        return; // restricted spaces may lack a subset; omit the box
    }
    groups.push(Group {
        group: label.to_string(),
        compiler: m.configs[cfg].compiler.label(),
        lv: letter_values(&values),
    });
}

/// Configs at `opt` for one GPU, legend order.
fn gpu_configs(m: &Measurements, gpu: &str, opt: OptLevel) -> Vec<usize> {
    let vendor = ALL_GPUS.iter().find(|g| g.name == gpu).map(|g| g.vendor);
    let Some(vendor) = vendor else { return vec![] };
    CompilerId::for_vendor(vendor)
        .into_iter()
        .filter_map(|c| m.config_index(gpu, c, opt))
        .collect()
}

/// The fastest tested GPU per vendor (Figs. 4–13 show only these).
fn fastest_gpus() -> [&'static str; 2] {
    [
        gpu_sim::fastest(Vendor::Nvidia).name,
        gpu_sim::fastest(Vendor::Amd).name,
    ]
}

/// Generate a figure from campaign measurements.
///
/// Figures 14/15 require the campaign to include both `-O1` and `-O3`.
pub fn figure(m: &Measurements, id: FigId) -> Figure {
    let mut groups = Vec::new();
    match id {
        FigId::Fig2 | FigId::Fig3 => {
            let dir = if id == FigId::Fig2 {
                Direction::Encode
            } else {
                Direction::Decode
            };
            for gpu in ALL_GPUS {
                for cfg in gpu_configs(m, gpu.name, OptLevel::O3) {
                    push_group(&mut groups, m, gpu.name, cfg, dir, None);
                }
            }
        }
        FigId::Fig4 | FigId::Fig5 => {
            let dir = if id == FigId::Fig4 {
                Direction::Encode
            } else {
                Direction::Decode
            };
            for gpu in fastest_gpus() {
                for w in [1usize, 2, 4, 8] {
                    let ids = m.space.uniform_word_size(w);
                    for cfg in gpu_configs(m, gpu, OptLevel::O3) {
                        push_group(
                            &mut groups,
                            m,
                            &format!("{gpu} w={w}"),
                            cfg,
                            dir,
                            Some(&ids),
                        );
                    }
                }
            }
        }
        FigId::Fig6 | FigId::Fig7 => {
            let dir = if id == FigId::Fig6 {
                Direction::Encode
            } else {
                Direction::Decode
            };
            for gpu in fastest_gpus() {
                for kind in ComponentKind::ALL {
                    let ids = m.space.kind_pair(kind);
                    for cfg in gpu_configs(m, gpu, OptLevel::O3) {
                        push_group(
                            &mut groups,
                            m,
                            &format!("{gpu} {}", kind.label()),
                            cfg,
                            dir,
                            Some(&ids),
                        );
                    }
                }
            }
        }
        FigId::Fig8 | FigId::Fig9 => {
            let dir = if id == FigId::Fig8 {
                Direction::Encode
            } else {
                Direction::Decode
            };
            // Alphabetical family order, as in the paper's figures.
            let mut families = lc_components::families();
            families.sort_unstable();
            for gpu in fastest_gpus() {
                for fam in &families {
                    let ids = m.space.stage1_family(fam);
                    for cfg in gpu_configs(m, gpu, OptLevel::O3) {
                        push_group(
                            &mut groups,
                            m,
                            &format!("{gpu} {fam}"),
                            cfg,
                            dir,
                            Some(&ids),
                        );
                    }
                }
            }
        }
        FigId::Fig10 | FigId::Fig11 => {
            let fam = if id == FigId::Fig10 { "BIT" } else { "RLE" };
            for gpu in fastest_gpus() {
                for w in [1usize, 2, 4, 8] {
                    let name = format!("{fam}_{w}");
                    let ids = m.space.stage1_component(&name);
                    for cfg in gpu_configs(m, gpu, OptLevel::O3) {
                        push_group(
                            &mut groups,
                            m,
                            &format!("{gpu} {name}"),
                            cfg,
                            Direction::Decode,
                            Some(&ids),
                        );
                    }
                }
            }
        }
        FigId::Fig12 | FigId::Fig13 => {
            let dir = if id == FigId::Fig12 {
                Direction::Encode
            } else {
                Direction::Decode
            };
            let mut families: Vec<&str> = m
                .space
                .reducers
                .iter()
                .map(|c| lc_core::component::family_of(c.name()))
                .collect();
            families.sort_unstable();
            families.dedup();
            for gpu in fastest_gpus() {
                for fam in &families {
                    let ids = m.space.stage3_family(fam);
                    for cfg in gpu_configs(m, gpu, OptLevel::O3) {
                        push_group(
                            &mut groups,
                            m,
                            &format!("{gpu} {fam}"),
                            cfg,
                            dir,
                            Some(&ids),
                        );
                    }
                }
            }
        }
        FigId::Fig14 | FigId::Fig15 => {
            let dir = if id == FigId::Fig14 {
                Direction::Encode
            } else {
                Direction::Decode
            };
            for gpu in ALL_GPUS {
                let vendor_compilers = CompilerId::for_vendor(gpu.vendor);
                for compiler in vendor_compilers {
                    let (Some(c1), Some(c3)) = (
                        m.config_index(gpu.name, compiler, OptLevel::O1),
                        m.config_index(gpu.name, compiler, OptLevel::O3),
                    ) else {
                        continue;
                    };
                    let o1 = m.series(c1, dir);
                    let o3 = m.series(c3, dir);
                    let speedups: Vec<f64> = o1.iter().zip(o3).map(|(a, b)| b / a).collect();
                    if speedups.is_empty() {
                        continue;
                    }
                    groups.push(Group {
                        group: gpu.name.to_string(),
                        compiler: compiler.label(),
                        lv: letter_values(&speedups),
                    });
                }
            }
            return Figure {
                id,
                unit: "speedup",
                groups,
            };
        }
    }
    Figure {
        id,
        unit: "GB/s",
        groups,
    }
}

/// Extension figures: the paper's §6.4 describes the Stage 2 results but
/// omits their plots ("the trends echo Stage 1 with minor exceptions").
/// These generators produce them, letter-value form, same grouping as
/// Figs. 8/9.
pub fn stage2_figure(m: &Measurements, dir: Direction) -> Figure {
    let mut groups = Vec::new();
    let mut families = lc_components::families();
    families.sort_unstable();
    for gpu in fastest_gpus() {
        for fam in &families {
            let ids = m.space.stage2_family(fam);
            for cfg in gpu_configs(m, gpu, OptLevel::O3) {
                push_group(
                    &mut groups,
                    m,
                    &format!("{gpu} {fam}"),
                    cfg,
                    dir,
                    Some(&ids),
                );
            }
        }
    }
    // Reuse Fig8/Fig9 identity for rendering; the caption distinguishes.
    Figure {
        id: if dir == Direction::Encode {
            FigId::Fig8
        } else {
            FigId::Fig9
        },
        unit: "GB/s",
        groups,
    }
}

/// Render a figure as an aligned text table. Throughputs print with one
/// decimal; speedup ratios (Figs. 14/15) need three.
pub fn render(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure {}: {} [{}]\n",
        fig.id.number(),
        fig.id.title(),
        fig.unit
    ));
    let width = fig
        .groups
        .iter()
        .map(|g| g.group.len())
        .max()
        .unwrap_or(8)
        .max(8);
    let prec = if fig.unit == "speedup" { 3 } else { 1 };
    for g in &fig.groups {
        let (q25, q75) = g.lv.fourths();
        out.push_str(&format!(
            "  {:w$}  {:6}  median {:9.p$} [{:9.p$}, {:9.p$}] n={} outliers={}\n",
            g.group,
            g.compiler,
            g.lv.median,
            q25,
            q75,
            g.lv.n,
            g.lv.outliers_low + g.lv.outliers_high,
            w = width,
            p = prec,
        ));
    }
    out
}

/// Render a figure as CSV (`group,compiler,n,median,q25,q75,min,max,outliers,skew`).
pub fn to_csv(fig: &Figure) -> String {
    let mut out = String::from("group,compiler,n,median,q25,q75,min,max,outliers,upward_skew\n");
    for g in &fig.groups {
        let (q25, q75) = g.lv.fourths();
        out.push_str(&format!(
            "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{},{:.4}\n",
            g.group,
            g.compiler,
            g.lv.n,
            g.lv.median,
            q25,
            q75,
            g.lv.min,
            g.lv.max,
            g.lv.outliers_low + g.lv.outliers_high,
            g.lv.upward_skew(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, StudyConfig};

    fn measurements() -> Measurements {
        let mut sc = StudyConfig::quick();
        // Include BIT so Figs. 10/11 have data in the restricted space.
        sc.space = crate::space::Space::restricted_to_families(&["TCMS", "BIT", "RLE", "RZE"]);
        sc.opt_levels = vec![OptLevel::O1, OptLevel::O3];
        run_campaign(&sc)
    }

    #[test]
    fn parse_fig_ids() {
        assert_eq!(FigId::parse("2"), Some(FigId::Fig2));
        assert_eq!(FigId::parse("fig11"), Some(FigId::Fig11));
        assert_eq!(FigId::parse("Fig15"), Some(FigId::Fig15));
        assert_eq!(FigId::parse("1"), None);
        assert_eq!(FigId::parse("16"), None);
    }

    #[test]
    fn all_figures_generate_nonempty_groups() {
        let m = measurements();
        for id in FigId::ALL {
            let f = figure(&m, id);
            assert!(!f.groups.is_empty(), "figure {:?} empty", id);
            let text = render(&f);
            assert!(text.contains("median"), "{text}");
            let csv = to_csv(&f);
            assert!(csv.lines().count() > 1);
        }
    }

    #[test]
    fn fig2_has_five_gpu_groups_with_platform_compilers() {
        let m = measurements();
        let f = figure(&m, FigId::Fig2);
        // 3 NVIDIA GPUs × 3 compilers + 2 AMD × 1 = 11 boxes.
        assert_eq!(f.groups.len(), 11);
        let nvcc_boxes = f.groups.iter().filter(|g| g.compiler == "NVCC").count();
        assert_eq!(nvcc_boxes, 3);
        let amd_boxes = f
            .groups
            .iter()
            .filter(|g| g.group.contains("MI100"))
            .count();
        assert_eq!(amd_boxes, 1, "MI100 is HIPCC-only");
    }

    #[test]
    fn fig14_speedups_cluster_near_one() {
        let m = measurements();
        let f = figure(&m, FigId::Fig14);
        assert_eq!(f.unit, "speedup");
        for g in &f.groups {
            assert!(
                g.lv.median > 0.8 && g.lv.median < 1.3,
                "{}: {}",
                g.group,
                g.lv.median
            );
        }
    }

    #[test]
    fn fig14_clang_regresses_on_nvidia() {
        let m = measurements();
        let f = figure(&m, FigId::Fig14);
        for g in f.groups.iter().filter(|g| g.compiler == "Clang") {
            assert!(
                g.lv.median < 1.0,
                "Clang -O3 encode regression on {}: {}",
                g.group,
                g.lv.median
            );
        }
    }

    #[test]
    fn fig15_clang_improves_but_less_than_10_percent() {
        let m = measurements();
        let f = figure(&m, FigId::Fig15);
        for g in f.groups.iter().filter(|g| g.compiler == "Clang") {
            assert!(g.lv.median > 1.0, "Clang -O3 decode speedup on {}", g.group);
            assert!(
                g.lv.median < 1.10,
                "speedup must stay below 10%: {}",
                g.lv.median
            );
        }
    }

    #[test]
    fn fig14_amd_is_stable() {
        let m = measurements();
        let f = figure(&m, FigId::Fig14);
        for g in f.groups.iter().filter(|g| g.group.contains("MI100")) {
            assert!(
                (g.lv.median - 1.0).abs() < 0.05,
                "MI100 stability: {}",
                g.lv.median
            );
        }
    }
}
