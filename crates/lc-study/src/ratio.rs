//! Compression-ratio analysis (extension).
//!
//! The paper characterizes *throughput*; its related-work section points
//! at Azami & Burtscher (ISPASS'25), who analyze the *importance of
//! components in terms of compression ratio* — which stages prefer which
//! component types, and how the preferred word size tracks the input's
//! data type. This module implements that companion analysis on top of
//! the same campaign, as the "future work" the paper inherits:
//!
//! * per-pipeline dataset-level ratios (uncompressed / compressed);
//! * per-(stage, family) ratio distributions — the component-importance
//!   measure;
//! * the best pipelines overall, with their simulated throughputs.

use gpu_sim::{CompilerId, Direction, OptLevel};
use lc_core::component::family_of;

use crate::campaign::Measurements;
use crate::stats::{letter_values, LetterValues};

/// Ratio distribution of one (stage, family) pin.
#[derive(Debug, Clone)]
pub struct FamilyImportance {
    /// Pipeline stage (0-based) the family was pinned to.
    pub stage: usize,
    /// Component family (e.g. `"DIFF"`).
    pub family: String,
    /// Distribution of dataset-level ratios across pipelines with the
    /// family at that stage.
    pub ratios: LetterValues,
}

/// Per-(stage, family) ratio distributions, stages 0..3, families in
/// registry order. Families that cannot occupy a stage (non-reducers at
/// stage 3) are omitted.
pub fn family_importance(m: &Measurements) -> Vec<FamilyImportance> {
    let mut out = Vec::new();
    let families = lc_components::families();
    for stage in 0..3usize {
        for fam in &families {
            let ids: Vec<_> = m
                .space
                .iter()
                .filter(|&id| family_of(m.space.stages(id)[stage].name()) == *fam)
                .collect();
            if ids.is_empty() {
                continue;
            }
            let ratios: Vec<f64> = ids.iter().map(|&id| m.ratio(m.space.index(id))).collect();
            out.push(FamilyImportance {
                stage,
                family: fam.to_string(),
                ratios: letter_values(&ratios),
            });
        }
    }
    out
}

/// One entry of the best-pipeline leaderboard.
#[derive(Debug, Clone)]
pub struct Leader {
    /// Pipeline description.
    pub pipeline: String,
    /// Dataset-level compression ratio.
    pub ratio: f64,
    /// Simulated encode throughput on the reference platform (GB/s).
    pub encode_gbs: f64,
    /// Simulated decode throughput on the reference platform (GB/s).
    pub decode_gbs: f64,
}

/// The `n` best pipelines by ratio, with throughputs from the fastest
/// NVIDIA platform at `-O3` (falling back to config 0 for restricted
/// campaigns).
pub fn leaderboard(m: &Measurements, n: usize) -> Vec<Leader> {
    let cfg = m
        .config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3)
        .unwrap_or(0);
    let mut indexed: Vec<usize> = (0..m.space.len()).collect();
    indexed.sort_by(|&a, &b| m.ratio(b).partial_cmp(&m.ratio(a)).unwrap()); // invariant: ratios are finite
    indexed
        .into_iter()
        .take(n)
        .map(|p| Leader {
            pipeline: m.space.describe(m.space.id_at(p)),
            ratio: m.ratio(p),
            encode_gbs: m.throughput(cfg, p, Direction::Encode),
            decode_gbs: m.throughput(cfg, p, Direction::Decode),
        })
        .collect()
}

/// Render the importance table + leaderboard as text.
pub fn render_report(m: &Measurements, top_n: usize) -> String {
    let mut out = String::from("Compression-ratio analysis (extension; ISPASS'25-style)\n\n");
    out.push_str("Per-(stage, family) dataset ratio medians:\n");
    out.push_str(&format!("{:8}", "family"));
    for stage in 1..=3 {
        out.push_str(&format!("  stage{stage:>2}"));
    }
    out.push('\n');
    let imp = family_importance(m);
    let families: Vec<String> = {
        let mut seen = Vec::new();
        for i in &imp {
            if !seen.contains(&i.family) {
                seen.push(i.family.clone());
            }
        }
        seen
    };
    for fam in &families {
        out.push_str(&format!("{fam:8}"));
        for stage in 0..3 {
            match imp.iter().find(|i| i.stage == stage && &i.family == fam) {
                Some(i) => out.push_str(&format!(" {:7.3}", i.ratios.median)),
                None => out.push_str(&format!(" {:>7}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("\nTop {top_n} pipelines by dataset ratio:\n"));
    for l in leaderboard(m, top_n) {
        out.push_str(&format!(
            "  {:32} ratio {:6.3}  enc {:7.1} GB/s  dec {:7.1} GB/s\n",
            l.pipeline, l.ratio, l.encode_gbs, l.decode_gbs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, StudyConfig};

    fn measurements() -> Measurements {
        run_campaign(&StudyConfig::quick())
    }

    #[test]
    fn ratios_are_sane() {
        let m = measurements();
        for p in 0..m.space.len() {
            let r = m.ratio(p);
            assert!(r > 0.2 && r < 100.0, "pipeline {p}: ratio {r}");
        }
    }

    #[test]
    fn some_pipeline_compresses_the_dataset() {
        let m = measurements();
        let best = leaderboard(&m, 1);
        assert!(best[0].ratio > 1.0, "best ratio {}", best[0].ratio);
        assert!(best[0].encode_gbs > 0.0);
    }

    #[test]
    fn leaderboard_is_sorted_and_sized() {
        let m = measurements();
        let top = leaderboard(&m, 10);
        assert_eq!(top.len(), 10);
        for w in top.windows(2) {
            assert!(w[0].ratio >= w[1].ratio);
        }
    }

    #[test]
    fn importance_covers_reducer_families_at_stage3_only_where_legal() {
        let m = measurements();
        let imp = family_importance(&m);
        // Stage 3 entries must all be reducer families.
        for i in imp.iter().filter(|i| i.stage == 2) {
            assert!(
                ["CLOG", "HCLOG", "RARE", "RAZE", "RLE", "RRE", "RZE"].contains(&i.family.as_str()),
                "{} at stage 3",
                i.family
            );
        }
        // The quick space has TCMS at stages 1/2 but never at stage 3.
        assert!(imp.iter().any(|i| i.stage == 0 && i.family == "TCMS"));
        assert!(!imp.iter().any(|i| i.stage == 2 && i.family == "TCMS"));
    }

    #[test]
    fn report_renders() {
        let m = measurements();
        let r = render_report(&m, 5);
        assert!(r.contains("stage 1"));
        assert!(r.contains("Top 5"));
    }
}
