//! Dependency-free SVG rendering of boxen (letter-value) figures.
//!
//! Produces the same visual language as the paper's plots: per group a
//! stack of nested boxes (each successive letter-value pair drawn
//! narrower), the median as a black line inside the widest box, compiler
//! color-coding, and a linear throughput axis. Written by `reproduce`
//! next to each figure's CSV when `--svg` is passed.

use crate::figures::Figure;

/// Per-compiler fill colors (NVCC / Clang / HIPCC), matching a
/// seaborn-like palette.
fn color(compiler: &str) -> &'static str {
    match compiler {
        "NVCC" => "#4c72b0",
        "Clang" => "#dd8452",
        "HIPCC" => "#55a868",
        _ => "#8172b3",
    }
}

const PLOT_HEIGHT: f64 = 320.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 110.0;
const MARGIN_LEFT: f64 = 70.0;
const GROUP_WIDTH: f64 = 34.0;
const BOX_MAX_WIDTH: f64 = 26.0;

/// Render `fig` as a standalone SVG document.
pub fn figure_svg(fig: &Figure) -> String {
    let n = fig.groups.len();
    let width = MARGIN_LEFT + n as f64 * GROUP_WIDTH + 30.0;
    let height = MARGIN_TOP + PLOT_HEIGHT + MARGIN_BOTTOM;
    let y_max = fig
        .groups
        .iter()
        .map(|g| g.lv.boxes.last().map_or(g.lv.median, |b| b.1))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    // Headroom + round the axis up to a tidy step.
    let y_top = nice_ceiling(y_max * 1.05);
    let y = |v: f64| MARGIN_TOP + PLOT_HEIGHT * (1.0 - (v / y_top).clamp(0.0, 1.0));

    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"sans-serif\" font-size=\"10\">\n"
    ));
    s.push_str(&format!(
        "<text x=\"{:.0}\" y=\"18\" font-size=\"13\">Figure {}: {} [{}]</text>\n",
        MARGIN_LEFT,
        fig.id.number(),
        fig.id.title(),
        fig.unit
    ));

    // Y axis with 5 ticks.
    s.push_str(&format!(
        "<line x1=\"{l:.1}\" y1=\"{t:.1}\" x2=\"{l:.1}\" y2=\"{b:.1}\" stroke=\"black\"/>\n",
        l = MARGIN_LEFT,
        t = MARGIN_TOP,
        b = MARGIN_TOP + PLOT_HEIGHT
    ));
    for i in 0..=5 {
        let v = y_top * i as f64 / 5.0;
        let yy = y(v);
        s.push_str(&format!(
            "<line x1=\"{:.1}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\" stroke=\"black\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            MARGIN_LEFT - 4.0,
            MARGIN_LEFT,
            MARGIN_LEFT - 7.0,
            yy + 3.5,
            format_tick(v)
        ));
    }

    // Boxes.
    for (i, g) in fig.groups.iter().enumerate() {
        let cx = MARGIN_LEFT + (i as f64 + 0.5) * GROUP_WIDTH;
        let fill = color(g.compiler);
        let depth = g.lv.boxes.len().max(1) as f64;
        // Draw outermost first so inner (wider) boxes overlay them.
        for (d, (lo, hi)) in g.lv.boxes.iter().enumerate().rev() {
            let w = BOX_MAX_WIDTH * (1.0 - d as f64 / (depth + 1.0));
            let y_hi = y(*hi);
            let y_lo = y(*lo);
            s.push_str(&format!(
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"{fill}\" fill-opacity=\"{:.2}\" stroke=\"{fill}\" stroke-width=\"0.4\"/>\n",
                cx - w / 2.0,
                y_hi,
                w,
                (y_lo - y_hi).max(0.5),
                0.35 + 0.5 * (1.0 - d as f64 / depth),
            ));
        }
        // Median.
        let ym = y(g.lv.median);
        s.push_str(&format!(
            "<line x1=\"{:.1}\" y1=\"{ym:.1}\" x2=\"{:.1}\" y2=\"{ym:.1}\" \
             stroke=\"black\" stroke-width=\"1.4\"/>\n",
            cx - BOX_MAX_WIDTH / 2.0,
            cx + BOX_MAX_WIDTH / 2.0,
        ));
        // Group label, rotated.
        s.push_str(&format!(
            "<text x=\"{cx:.1}\" y=\"{:.1}\" transform=\"rotate(-55 {cx:.1} {:.1})\" \
             text-anchor=\"end\">{}</text>\n",
            MARGIN_TOP + PLOT_HEIGHT + 14.0,
            MARGIN_TOP + PLOT_HEIGHT + 14.0,
            escape(&g.group),
        ));
    }

    // Legend: distinct compilers in appearance order.
    let mut seen = Vec::new();
    for g in &fig.groups {
        if !seen.contains(&g.compiler) {
            seen.push(g.compiler);
        }
    }
    for (i, compiler) in seen.iter().enumerate() {
        let lx = MARGIN_LEFT + 10.0 + i as f64 * 80.0;
        let ly = height - 14.0;
        s.push_str(&format!(
            "<rect x=\"{lx:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\">{compiler}</text>\n",
            ly - 9.0,
            color(compiler),
            lx + 14.0,
            ly,
        ));
    }
    s.push_str("</svg>\n");
    s
}

fn nice_ceiling(v: f64) -> f64 {
    if v <= 0.0 {
        return 1.0;
    }
    let mag = 10f64.powf(v.log10().floor());
    let norm = v / mag;
    let nice = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

fn format_tick(v: f64) -> String {
    if v >= 100.0 || v == 0.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, StudyConfig};
    use crate::figures::{figure, FigId};

    #[test]
    fn nice_ceiling_values() {
        assert_eq!(nice_ceiling(0.0), 1.0);
        assert_eq!(nice_ceiling(3.0), 5.0);
        assert_eq!(nice_ceiling(7.0), 10.0);
        assert_eq!(nice_ceiling(12.0), 20.0);
        assert_eq!(nice_ceiling(450.0), 500.0);
        assert_eq!(nice_ceiling(999.0), 1000.0);
    }

    #[test]
    fn escape_handles_markup() {
        assert_eq!(escape("a<b>&c"), "a&lt;b&gt;&amp;c");
    }

    #[test]
    fn svg_structure_is_complete() {
        let m = run_campaign(&StudyConfig::quick());
        let fig = figure(&m, FigId::Fig2);
        let svg = figure_svg(&fig);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One median line per group plus axis ticks.
        let medians = svg.matches("stroke-width=\"1.4\"").count();
        assert_eq!(medians, fig.groups.len());
        // Boxes exist for every group.
        let rects = svg.matches("<rect").count();
        assert!(rects >= fig.groups.len(), "{rects}");
        // All three compilers in the legend.
        for c in ["NVCC", "Clang", "HIPCC"] {
            assert!(svg.contains(c), "{c}");
        }
    }

    #[test]
    fn svg_is_valid_enough_xml() {
        // Cheap well-formedness check: every opened tag closes.
        let m = run_campaign(&StudyConfig::quick());
        let svg = figure_svg(&figure(&m, FigId::Fig6));
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }
}
