//! Paper-vs-measured report: the qualitative findings of §6 checked
//! against the campaign's measurements, plus the EXPERIMENTS.md emitter.
//!
//! The reproduction contract (DESIGN.md) is *shape*, not absolute numbers:
//! each [`Finding`] states one claim from the paper and whether this run
//! reproduces it.

use gpu_sim::{CompilerId, Direction, OptLevel};
use lc_core::ComponentKind;

use crate::campaign::Measurements;
use crate::figures::{self, Figure};
use crate::stats::{letter_values, median};

/// One qualitative claim from the paper, checked against measurements.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Short identifier, e.g. `"clang-encode-slower"`.
    pub id: &'static str,
    /// Where the paper makes the claim.
    pub source: &'static str,
    /// The claim, as stated by the paper.
    pub paper: &'static str,
    /// What this run measured.
    pub measured: String,
    /// Whether the measurement reproduces the claim.
    pub holds: bool,
}

fn med(
    m: &Measurements,
    gpu: &str,
    comp: CompilerId,
    opt: OptLevel,
    dir: Direction,
) -> Option<f64> {
    let c = m.config_index(gpu, comp, opt)?;
    let s = m.series(c, dir);
    if s.is_empty() {
        None
    } else {
        Some(median(s))
    }
}

fn subset_median(
    m: &Measurements,
    gpu: &str,
    dir: Direction,
    ids: &[crate::space::PipelineId],
) -> Option<f64> {
    if ids.is_empty() {
        return None;
    }
    let c = m
        .config_index(gpu, CompilerId::Nvcc, OptLevel::O3)
        .or_else(|| m.config_index(gpu, CompilerId::Hipcc, OptLevel::O3))?;
    Some(median(&m.select(c, dir, ids)))
}

/// Check every §6 claim the campaign's data can address.
///
/// Findings whose required subset or platform is absent from `m` (e.g.
/// restricted test spaces, single-opt-level campaigns) are skipped.
pub fn findings(m: &Measurements) -> Vec<Finding> {
    let mut out = Vec::new();
    let nv = "RTX 4090";
    let amd = "RX 7900 XTX";

    // §6.1: decoding throughputs are generally higher than encoding.
    if let (Some(e), Some(d)) = (
        med(m, nv, CompilerId::Nvcc, OptLevel::O3, Direction::Encode),
        med(m, nv, CompilerId::Nvcc, OptLevel::O3, Direction::Decode),
    ) {
        out.push(Finding {
            id: "decode-faster-than-encode",
            source: "§6.1",
            paper: "Decoding throughputs are generally higher than encoding throughputs",
            measured: format!("decode median {d:.1} GB/s vs encode median {e:.1} GB/s"),
            holds: d > e,
        });
    }

    // §6.1: GPU generation staircase.
    let stair: Vec<Option<f64>> = ["TITAN V", "RTX 3080 Ti", "RTX 4090"]
        .iter()
        .map(|g| med(m, g, CompilerId::Nvcc, OptLevel::O3, Direction::Encode))
        .collect();
    if let [Some(a), Some(b), Some(c)] = stair[..] {
        out.push(Finding {
            id: "nvidia-staircase",
            source: "§6.1 Fig. 2",
            paper: "Newer/larger GPUs have higher overall performance (staircase shape)",
            measured: format!("TITAN V {a:.1} < 3080 Ti {b:.1} < 4090 {c:.1} GB/s"),
            holds: a < b && b < c,
        });
    }
    if let (Some(a), Some(b)) = (
        med(
            m,
            "MI100",
            CompilerId::Hipcc,
            OptLevel::O3,
            Direction::Encode,
        ),
        med(m, amd, CompilerId::Hipcc, OptLevel::O3, Direction::Encode),
    ) {
        out.push(Finding {
            id: "amd-staircase",
            source: "§6.1 Fig. 2",
            paper: "MI100 to RX 7900 XTX shows the same staircase on AMD",
            measured: format!("MI100 {a:.1} < 7900 XTX {b:.1} GB/s"),
            holds: a < b,
        });
    }

    // §6.1: Clang encode slower / decode faster; NVCC ≈ HIPCC.
    if let (Some(en), Some(ec), Some(eh)) = (
        med(m, nv, CompilerId::Nvcc, OptLevel::O3, Direction::Encode),
        med(m, nv, CompilerId::Clang, OptLevel::O3, Direction::Encode),
        med(m, nv, CompilerId::Hipcc, OptLevel::O3, Direction::Encode),
    ) {
        out.push(Finding {
            id: "clang-encode-slower",
            source: "§6.1 Fig. 2",
            paper: "Clang's encoding throughputs are consistently lower than NVCC's and HIPCC's",
            measured: format!("Clang {ec:.1} vs NVCC {en:.1} vs HIPCC {eh:.1} GB/s"),
            holds: ec < en && ec < eh,
        });
        out.push(Finding {
            id: "nvcc-hipcc-match",
            source: "§6.1",
            paper: "NVCC and HIPCC distributions are always close on NVIDIA GPUs",
            measured: format!("median ratio {:.4}", eh / en),
            holds: (eh / en - 1.0).abs() < 0.02,
        });
    }
    if let (Some(dn), Some(dc)) = (
        med(m, nv, CompilerId::Nvcc, OptLevel::O3, Direction::Decode),
        med(m, nv, CompilerId::Clang, OptLevel::O3, Direction::Decode),
    ) {
        out.push(Finding {
            id: "clang-decode-faster",
            source: "§6.1 Fig. 3",
            paper: "Clang's decoding throughputs are consistently higher than NVCC's and HIPCC's",
            measured: format!("Clang {dc:.1} vs NVCC {dn:.1} GB/s"),
            holds: dc > dn,
        });
    }

    // §6.1: decode distributions skew towards higher throughputs.
    if let Some(c) = m.config_index(nv, CompilerId::Nvcc, OptLevel::O3) {
        let enc_lv = letter_values(m.series(c, Direction::Encode));
        let dec_lv = letter_values(m.series(c, Direction::Decode));
        out.push(Finding {
            id: "decode-skews-up",
            source: "§6.1 Fig. 3",
            paper: "Decoding distributions are not symmetric but skew towards higher throughputs",
            measured: format!(
                "decode skew {:.3} vs encode skew {:.3}",
                dec_lv.upward_skew(),
                enc_lv.upward_skew()
            ),
            holds: dec_lv.upward_skew() > enc_lv.upward_skew() && dec_lv.upward_skew() > 0.0,
        });
    }

    // §6.2: encoding throughput generally increases with word size.
    {
        let w1 = subset_median(m, nv, Direction::Encode, &m.space.uniform_word_size(1));
        let w8 = subset_median(m, nv, Direction::Encode, &m.space.uniform_word_size(8));
        if let (Some(w1), Some(w8)) = (w1, w8) {
            out.push(Finding {
                id: "encode-wordsize-scaling",
                source: "§6.2 Fig. 4",
                paper: "Encoding throughput generally increases with the word size",
                measured: format!("w=1 median {w1:.1} vs w=8 median {w8:.1} GB/s"),
                holds: w8 > w1,
            });
        }
    }
    // §6.2: 8-byte decoding trends highest.
    {
        let medians: Vec<Option<f64>> = [1usize, 2, 4, 8]
            .iter()
            .map(|&w| subset_median(m, nv, Direction::Decode, &m.space.uniform_word_size(w)))
            .collect();
        if medians.iter().all(|v| v.is_some()) {
            let v: Vec<f64> = medians.into_iter().map(|x| x.unwrap()).collect(); // invariant: all() checked Some
            out.push(Finding {
                id: "decode-wordsize-8-highest",
                source: "§6.2 Fig. 5",
                paper: "Decoding throughputs trend highest for 8-byte components",
                measured: format!(
                    "medians w=1..8: {:.1}/{:.1}/{:.1}/{:.1}",
                    v[0], v[1], v[2], v[3]
                ),
                holds: v[3] >= v[0] && v[3] >= v[1] && v[3] >= v[2],
            });
        }
    }

    // §6.3: reducers encode slowest; predictors decode slowest.
    {
        let kinds = ComponentKind::ALL;
        let enc: Vec<Option<f64>> = kinds
            .iter()
            .map(|&k| subset_median(m, nv, Direction::Encode, &m.space.kind_pair(k)))
            .collect();
        if enc.iter().all(|v| v.is_some()) {
            let v: Vec<f64> = enc.into_iter().map(|x| x.unwrap()).collect(); // invariant: all() checked Some
            let reducer = v[3];
            out.push(Finding {
                id: "reducers-encode-slowest",
                source: "§6.3 Fig. 6",
                paper: "Component types yield similar encoding throughputs except reducers, which are slower",
                measured: format!(
                    "medians mut/shuf/pred/red: {:.1}/{:.1}/{:.1}/{:.1}",
                    v[0], v[1], v[2], v[3]
                ),
                holds: reducer < v[0] && reducer < v[1] && reducer < v[2],
            });
        }
        let dec: Vec<Option<f64>> = kinds
            .iter()
            .map(|&k| subset_median(m, nv, Direction::Decode, &m.space.kind_pair(k)))
            .collect();
        if dec.iter().all(|v| v.is_some()) {
            let v: Vec<f64> = dec.into_iter().map(|x| x.unwrap()).collect(); // invariant: all() checked Some
            out.push(Finding {
                id: "predictors-decode-slowest",
                source: "§6.3 Fig. 7",
                paper:
                    "Pipelines with predictors yield the lowest decoding throughputs (prefix sums)",
                measured: format!(
                    "medians mut/shuf/pred/red: {:.1}/{:.1}/{:.1}/{:.1}",
                    v[0], v[1], v[2], v[3]
                ),
                holds: v[2] < v[0] && v[2] < v[1] && v[2] < v[3],
            });
        }
    }

    // §6.4: RARE and RAZE have the lowest stage-1 encoding throughputs.
    {
        let families: Vec<&str> = lc_components::families();
        let meds: Vec<(String, Option<f64>)> = families
            .iter()
            .map(|f| {
                (
                    f.to_string(),
                    subset_median(m, nv, Direction::Encode, &m.space.stage1_family(f)),
                )
            })
            .collect();
        if meds.iter().all(|(_, v)| v.is_some()) && meds.len() >= 6 {
            let mut ranked: Vec<(String, f64)> =
                meds.into_iter().map(|(f, v)| (f, v.unwrap())).collect(); // invariant: all() checked Some
            ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap()); // invariant: medians are finite
            let slowest2: Vec<&str> = ranked.iter().take(2).map(|(f, _)| f.as_str()).collect();
            out.push(Finding {
                id: "rare-raze-encode-slowest",
                source: "§6.4 Fig. 8",
                paper: "Pipelines with RARE/RAZE in Stage 1 have significantly lower encoding throughputs",
                measured: format!("slowest two stage-1 families: {slowest2:?}"),
                holds: slowest2.contains(&"RARE") && slowest2.contains(&"RAZE"),
            });
        }
    }

    // §6.4 Fig. 11: RLE_4 decodes slower than RLE_1/2/8 in stage 1.
    {
        let meds: Vec<Option<f64>> = [1usize, 2, 4, 8]
            .iter()
            .map(|&w| {
                subset_median(
                    m,
                    nv,
                    Direction::Decode,
                    &m.space.stage1_component(&format!("RLE_{w}")),
                )
            })
            .collect();
        if meds.iter().all(|v| v.is_some()) {
            let v: Vec<f64> = meds.into_iter().map(|x| x.unwrap()).collect(); // invariant: all() checked Some
            out.push(Finding {
                id: "rle4-decode-slowest",
                source: "§6.4 Fig. 11",
                paper: "RLE_4 decodes slower than RLE_1/2/8 on single-precision inputs (it actually compresses, so it must decompress)",
                measured: format!(
                    "decode medians RLE_1/2/4/8: {:.1}/{:.1}/{:.1}/{:.1} GB/s",
                    v[0], v[1], v[2], v[3]
                ),
                holds: v[2] < v[0] && v[2] < v[1] && v[2] < v[3],
            });
        }
    }

    // §6.4 prose: at Stage 2, RLE's word-size discrepancies alleviate —
    // the preceding component's output is "more likely to be similarly
    // compressible by RLE components of different word sizes".
    {
        let spread = |stage1: bool| -> Option<f64> {
            let mut meds = Vec::new();
            for w in [1usize, 2, 4, 8] {
                let name = format!("RLE_{w}");
                let ids = if stage1 {
                    m.space.stage1_component(&name)
                } else {
                    m.space
                        .iter()
                        .filter(|&id| m.space.stages(id)[1].name() == name)
                        .collect()
                };
                meds.push(subset_median(m, nv, Direction::Decode, &ids)?);
            }
            let max = meds.iter().cloned().fold(f64::MIN, f64::max);
            let min = meds.iter().cloned().fold(f64::MAX, f64::min);
            Some((max - min) / max)
        };
        if let (Some(sp1), Some(sp2)) = (spread(true), spread(false)) {
            out.push(Finding {
                id: "rle-stage2-uniform",
                source: "§6.4",
                paper: "RLE's per-word-size decode discrepancies alleviate when it moves from Stage 1 to Stage 2",
                measured: format!(
                    "relative spread of RLE_1/2/4/8 decode medians: stage-1 {sp1:.3} vs stage-2 {sp2:.3}"
                ),
                holds: sp2 < sp1,
            });
        }
    }

    // §6.5: Clang -O1→-O3 encode regression, decode gain < 10%.
    if let (Some(c1), Some(c3)) = (
        m.config_index(nv, CompilerId::Clang, OptLevel::O1),
        m.config_index(nv, CompilerId::Clang, OptLevel::O3),
    ) {
        let enc_speedup = median(
            &m.series(c1, Direction::Encode)
                .iter()
                .zip(m.series(c3, Direction::Encode))
                .map(|(a, b)| b / a)
                .collect::<Vec<_>>(),
        );
        let dec_speedup = median(
            &m.series(c1, Direction::Decode)
                .iter()
                .zip(m.series(c3, Direction::Decode))
                .map(|(a, b)| b / a)
                .collect::<Vec<_>>(),
        );
        out.push(Finding {
            id: "clang-o3-encode-regression",
            source: "§6.5 Fig. 14",
            paper: "Clang's encoding throughput tends to decrease from -O1 to -O3 on NVIDIA GPUs",
            measured: format!("median encode speedup {enc_speedup:.3}"),
            holds: enc_speedup < 1.0,
        });
        out.push(Finding {
            id: "clang-o3-decode-gain-small",
            source: "§6.5 Fig. 15",
            paper: "Clang's decoding improves from -O1 to -O3, but by less than 10%",
            measured: format!("median decode speedup {dec_speedup:.3}"),
            holds: dec_speedup > 1.0 && dec_speedup < 1.10,
        });
    }

    out
}

/// Emit the EXPERIMENTS.md document: per-figure letter-value tables plus
/// the paper-vs-measured findings checklist.
pub fn experiments_markdown(m: &Measurements, figs: &[Figure]) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs. measured\n\n");
    out.push_str(
        "Reproduction of \"Characterizing the Performance of Parallel \
         Data-Compression Algorithms across Compilers and GPUs\" (SC Workshops '25).\n\n\
         All throughputs come from the analytical GPU/compiler model driven by real \
         kernel statistics of the Rust LC implementation (see DESIGN.md for the \
         substitution argument); the comparison target is the *shape* of each paper \
         figure, not its absolute numbers.\n\n",
    );
    out.push_str(&format!(
        "Campaign: {} pipelines × {} inputs × {} platform configs.\n\n",
        m.space.len(),
        m.files.len(),
        m.configs.len()
    ));

    out.push_str("## Findings checklist (§6 claims)\n\n");
    out.push_str("| ✓ | Claim (paper) | Measured | Source |\n|---|---|---|---|\n");
    let fs = findings(m);
    for f in &fs {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            if f.holds { "✅" } else { "❌" },
            f.paper,
            f.measured,
            f.source
        ));
    }
    let held = fs.iter().filter(|f| f.holds).count();
    out.push_str(&format!("\n**{held}/{} claims reproduced.**\n\n", fs.len()));

    for fig in figs {
        out.push_str(&format!(
            "## Figure {}: {}\n\n```text\n",
            fig.id.number(),
            fig.id.title()
        ));
        out.push_str(&figures::render(fig));
        out.push_str("```\n\n");
    }
    out.push_str("## Compression-ratio extension\n\n```text\n");
    out.push_str(&crate::ratio::render_report(m, 10));
    out.push_str("```\n");
    out
}

/// JSON rendering of a letter-value summary (field order mirrors the
/// struct so run dumps stay stable across refactors).
pub fn letter_values_json(lv: &crate::stats::LetterValues) -> lc_json::Value {
    use lc_json::Value;
    Value::object([
        ("n", Value::from(lv.n)),
        ("median", Value::from(lv.median)),
        (
            "boxes",
            Value::array(
                lv.boxes
                    .iter()
                    .map(|&(lo, hi)| Value::array([Value::from(lo), Value::from(hi)])),
            ),
        ),
        ("outliers_low", Value::from(lv.outliers_low)),
        ("outliers_high", Value::from(lv.outliers_high)),
        ("min", Value::from(lv.min)),
        ("max", Value::from(lv.max)),
    ])
}

/// Machine-readable dump of the whole run: findings plus every figure's
/// letter-value rows, for downstream plotting/regression tooling.
///
/// The emitter is deterministic (ordered objects, shortest round-trip
/// floats), which is what lets a resumed campaign promise a byte-identical
/// `run.json`.
pub fn to_json(m: &Measurements, figs: &[Figure]) -> String {
    use lc_json::Value;
    let run = Value::object([
        ("pipelines", Value::from(m.space.len())),
        (
            "inputs",
            Value::array(m.files.iter().map(|f| Value::from(*f))),
        ),
        (
            "platforms",
            Value::array(m.configs.iter().map(|c| Value::from(c.label()))),
        ),
        (
            "findings",
            Value::array(findings(m).iter().map(|f| {
                Value::object([
                    ("id", Value::from(f.id)),
                    ("source", Value::from(f.source)),
                    ("paper", Value::from(f.paper)),
                    ("measured", Value::from(f.measured.as_str())),
                    ("holds", Value::from(f.holds)),
                ])
            })),
        ),
        (
            "figures",
            Value::array(figs.iter().map(|f| {
                Value::object([
                    ("figure", Value::from(f.id.number())),
                    ("title", Value::from(f.id.title())),
                    ("unit", Value::from(f.unit)),
                    (
                        "groups",
                        Value::array(f.groups.iter().map(|g| {
                            Value::object([
                                ("group", Value::from(g.group.as_str())),
                                ("compiler", Value::from(g.compiler)),
                                ("lv", letter_values_json(&g.lv)),
                            ])
                        })),
                    ),
                ])
            })),
        ),
    ]);
    run.pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, StudyConfig};

    #[test]
    fn findings_on_quick_campaign() {
        let mut sc = StudyConfig::quick();
        sc.opt_levels = vec![OptLevel::O1, OptLevel::O3];
        let m = run_campaign(&sc);
        let fs = findings(&m);
        assert!(!fs.is_empty());
        // The compiler-level findings must hold even on the restricted space.
        for id in [
            "clang-encode-slower",
            "clang-decode-faster",
            "nvcc-hipcc-match",
            "nvidia-staircase",
            "clang-o3-encode-regression",
            "clang-o3-decode-gain-small",
        ] {
            let f = fs
                .iter()
                .find(|f| f.id == id)
                .unwrap_or_else(|| panic!("missing {id}"));
            assert!(f.holds, "{id}: {}", f.measured);
        }
    }

    #[test]
    fn json_export_is_valid_and_complete() {
        let m = run_campaign(&StudyConfig::quick());
        let figs = vec![crate::figures::figure(&m, crate::figures::FigId::Fig2)];
        let json = to_json(&m, &figs);
        let v = lc_json::Value::parse(&json).expect("valid JSON");
        assert_eq!(v["pipelines"], 16 * 16 * 8);
        assert!(v["findings"].as_array().unwrap().len() > 3);
        assert_eq!(v["figures"][0]["figure"], 2);
        assert!(
            v["figures"][0]["groups"][0]["lv"]["median"]
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn markdown_report_structure() {
        let m = run_campaign(&StudyConfig::quick());
        let figs = vec![crate::figures::figure(&m, crate::figures::FigId::Fig2)];
        let md = experiments_markdown(&m, &figs);
        assert!(md.contains("# EXPERIMENTS"));
        assert!(md.contains("Findings checklist"));
        assert!(md.contains("## Figure 2"));
    }
}
