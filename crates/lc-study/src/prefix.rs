//! Prefix-memoized sweep execution: the shared-stage cache behind the
//! campaign's 3-level pipeline trie.
//!
//! A work unit owns the contiguous pipeline range `(s1, *, *)`: every
//! pipeline in it shares the stage-1 output, and every `(s1, s2, *)`
//! row shares the stage-2 output. The campaign exploits that by keying
//! intermediate [`StageOutcome`]s (plus their precomputed per-platform
//! stage times) on the pipeline *prefix*:
//!
//! * **level 1** — the `(s1)` prefix: one entry, computed on first use
//!   and pinned for the unit's lifetime;
//! * **level 2** — the `(s1, s2)` prefixes: an LRU map bounded by a
//!   byte cap, so sweeping wide spaces at paper scale cannot hold all
//!   62 stage-2 outputs resident at once.
//!
//! With the cache, a unit of `nc` stage-2 components × `nr` reducers
//! costs `1 + nc + nc·nr` stage executions instead of the naive
//! `3·nc·nr` — asymptotically a 3× cut, ~2.6× at the quick space's
//! shape. [`SweepMode::Naive`] keeps the truly-from-scratch path
//! available as the comparison baseline (and as a memory floor for
//! constrained hosts).
//!
//! Observability: every lookup, miss, and eviction is counted in a
//! campaign-wide [`CacheStats`] (returned to callers as a
//! [`CacheReport`]) and mirrored to `lc-telemetry` counters
//! (`campaign.prefix_cache.{hits,misses,evictions}`) plus a resident-
//! bytes gauge, so traces show cache behavior over time.
//!
//! Correctness note: stage execution is deterministic, so a cache hit,
//! a fresh computation, and a post-eviction recomputation all yield
//! bit-identical outcomes — sweep results are byte-identical across
//! modes and cap sizes (a test in `campaign.rs` enforces this).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::runner::StageOutcome;

/// Default level-2 cache budget for a whole campaign, in MiB.
pub const DEFAULT_CACHE_MB: usize = 512;

/// How the campaign executor walks a unit's pipeline range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Share stage prefixes through a byte-capped cache (the default).
    /// `cache_mb` is the campaign-wide level-2 budget; each concurrent
    /// unit gets an equal slice of it.
    Memoized {
        /// Campaign-wide level-2 cache budget in MiB.
        cache_mb: usize,
    },
    /// Recompute every stage of every pipeline from scratch. ~3× the
    /// stage work; exists as the perf baseline and for hosts where even
    /// one pinned prefix per worker is too much memory.
    Naive,
}

impl Default for SweepMode {
    fn default() -> Self {
        SweepMode::Memoized {
            cache_mb: DEFAULT_CACHE_MB,
        }
    }
}

impl SweepMode {
    /// Stable journal/report label for the mode.
    pub fn label(&self) -> &'static str {
        match self {
            SweepMode::Memoized { .. } => "memoized",
            SweepMode::Naive => "naive",
        }
    }

    /// Per-unit level-2 byte budget, splitting the campaign-wide cap
    /// evenly across `workers` concurrently-running units. `None` in
    /// naive mode.
    pub fn per_unit_cap_bytes(&self, workers: usize) -> Option<u64> {
        match self {
            SweepMode::Memoized { cache_mb } => {
                Some((*cache_mb as u64 * 1024 * 1024) / workers.max(1) as u64)
            }
            SweepMode::Naive => None,
        }
    }
}

/// Campaign-wide cache statistics, shared by every unit's cache.
///
/// All fields are relaxed atomics: units on different workers bump them
/// concurrently, and only totals are reported.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups observed at the cache entry points (every lookup is then
    /// classified as exactly one hit or miss — `report` checks that).
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Computed entries refused admission (memory budget pressure or a
    /// chaos allocation denial) — handed to the caller uncached.
    sheds: AtomicU64,
    /// Bytes currently resident across all live unit caches.
    resident: AtomicU64,
    /// High-water mark of `resident`.
    peak_resident: AtomicU64,
}

impl CacheStats {
    /// Record `n` prefix-cache lookups, before classification. Called at
    /// every lookup entry point ([`UnitPrefixCache::level1`]/[`UnitPrefixCache::level2`]
    /// and the naive-mode recomputation path).
    pub fn lookup(&self, n: u64) {
        self.lookups.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` prefix-cache hits.
    pub fn hit(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
        if lc_telemetry::enabled() {
            lc_telemetry::counter("campaign.prefix_cache.hits").add(n);
        }
    }

    /// Record `n` prefix-cache misses (a naive-mode recomputation is an
    /// unconditional miss).
    pub fn miss(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
        if lc_telemetry::enabled() {
            lc_telemetry::counter("campaign.prefix_cache.misses").add(n);
        }
    }

    fn evict(&self, n: u64) {
        self.evictions.fetch_add(n, Ordering::Relaxed);
        if lc_telemetry::enabled() {
            lc_telemetry::counter("campaign.prefix_cache.evictions").add(n);
        }
    }

    fn shed(&self, n: u64) {
        self.sheds.fetch_add(n, Ordering::Relaxed);
        if lc_telemetry::enabled() {
            lc_telemetry::counter("campaign.prefix_cache.sheds").add(n);
        }
    }

    fn resident_add(&self, bytes: u64) {
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_resident.fetch_max(now, Ordering::Relaxed);
        if lc_telemetry::enabled() {
            lc_telemetry::gauge("campaign.prefix_cache.resident_bytes").set(now);
        }
    }

    fn resident_sub(&self, bytes: u64) {
        // Saturate instead of wrapping: a release racing another
        // thread's concurrent add could otherwise momentarily drive the
        // counter below zero and leave a ~u64::MAX residency on the
        // gauge for the rest of the campaign.
        let prev = self
            .resident
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
        let now = match prev {
            Ok(p) | Err(p) => p.saturating_sub(bytes),
        };
        if lc_telemetry::enabled() {
            lc_telemetry::gauge("campaign.prefix_cache.resident_bytes").set(now);
        }
    }

    /// Bytes currently resident across all live unit caches. Exposed for
    /// diagnostics and the concurrency model tests, which assert the
    /// counter returns to zero (and never wraps) once every unit cache
    /// has dropped.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Snapshot the totals.
    pub fn report(&self) -> CacheReport {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        debug_assert_eq!(
            hits + misses,
            self.lookups.load(Ordering::Relaxed),
            "every lookup must be classified as exactly one hit or miss"
        );
        CacheReport {
            hits,
            misses,
            evictions: self.evictions.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            peak_resident_bytes: self.peak_resident.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of [`CacheStats`], attached to a campaign outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// Prefix lookups served from the cache.
    pub hits: u64,
    /// Prefix lookups that had to compute (naive mode: every one).
    pub misses: u64,
    /// Level-2 entries dropped to stay under the byte cap.
    pub evictions: u64,
    /// Computed entries never admitted (memory-budget pressure or chaos
    /// allocation denial); the caller used them uncached.
    pub sheds: u64,
    /// High-water mark of resident cache bytes across the campaign.
    pub peak_resident_bytes: u64,
}

impl CacheReport {
    /// Fraction of lookups served from the cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Peak resident bytes in MiB.
    pub fn peak_resident_mb(&self) -> f64 {
        self.peak_resident_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// A memoized pipeline prefix: the stage's transformed data plus the
/// per-platform (encode, decode) stage times derived from its kernel
/// statistics — everything downstream pipelines need, so a hit skips
/// both the stage execution and the platform-time recomputation.
#[derive(Debug, Clone)]
pub struct PrefixEntry {
    /// The stage execution result (output chunks + kernel stats).
    pub outcome: StageOutcome,
    /// Per-platform `(encode, decode)` stage times, config-indexed.
    pub times: Vec<(f64, f64)>,
}

impl PrefixEntry {
    /// Approximate resident size: chunk payloads dominate; per-chunk Vec
    /// headers and the times table are accounted as flat overhead.
    fn bytes(&self) -> u64 {
        self.outcome.output.total_bytes()
            + self.outcome.output.chunk_count() as u64 * 24
            + self.times.len() as u64 * 16
    }
}

/// The prefix cache of one work unit. Owned by a single worker; cross-
/// unit sharing is structurally impossible (units partition the space
/// by stage-1 component), so there is no locking on the lookup path —
/// only the shared [`CacheStats`] atomics.
pub struct UnitPrefixCache<'s> {
    cap_bytes: u64,
    level1: Option<Arc<PrefixEntry>>,
    /// `s2 index -> (entry, last-use tick)`.
    level2: HashMap<usize, (Arc<PrefixEntry>, u64)>,
    level2_resident: u64,
    level1_resident: u64,
    tick: u64,
    stats: &'s CacheStats,
    /// Campaign-wide residency ceiling from the soft memory budget
    /// (`--mem-budget-mb`): a level-2 insert that would push the global
    /// resident gauge past it is shed instead of admitted.
    shed_limit: Option<u64>,
}

impl<'s> UnitPrefixCache<'s> {
    /// Create a cache with a level-2 byte cap. The cap is *soft*: the
    /// most-recently-inserted entry is always retained (evicting the
    /// data a pipeline is about to read would thrash), so residency can
    /// exceed the cap by at most one entry.
    pub fn new(cap_bytes: u64, stats: &'s CacheStats) -> Self {
        Self {
            cap_bytes,
            level1: None,
            level2: HashMap::new(),
            level2_resident: 0,
            level1_resident: 0,
            tick: 0,
            stats,
            shed_limit: None,
        }
    }

    /// Attach a campaign-wide residency ceiling (see
    /// [`Self::shed_limit`]). `None` leaves admission ungoverned.
    pub fn with_shed_limit(mut self, limit: Option<u64>) -> Self {
        self.shed_limit = limit;
        self
    }

    /// Look up the unit's `(s1)` prefix, computing and pinning it on
    /// first use. Every call counts: per-pipeline lookups are what make
    /// the hit/miss telemetry meaningful.
    pub fn level1<E>(
        &mut self,
        compute: impl FnOnce() -> Result<PrefixEntry, E>,
    ) -> Result<Arc<PrefixEntry>, E> {
        self.stats.lookup(1);
        if let Some(e) = &self.level1 {
            self.stats.hit(1);
            return Ok(Arc::clone(e));
        }
        self.stats.miss(1);
        let entry = Arc::new(compute()?);
        self.level1_resident = entry.bytes();
        self.stats.resident_add(self.level1_resident);
        self.level1 = Some(Arc::clone(&entry));
        Ok(entry)
    }

    /// Look up the `(s1, s2)` prefix for stage-2 component `key`,
    /// computing it on miss and evicting least-recently-used peers until
    /// the level-2 residency is back under the cap.
    pub fn level2<E>(
        &mut self,
        key: usize,
        compute: impl FnOnce() -> Result<PrefixEntry, E>,
    ) -> Result<Arc<PrefixEntry>, E> {
        self.stats.lookup(1);
        self.tick += 1;
        if let Some((e, last)) = self.level2.get_mut(&key) {
            *last = self.tick;
            self.stats.hit(1);
            return Ok(Arc::clone(e));
        }
        self.stats.miss(1);
        let entry = Arc::new(compute()?);
        let bytes = entry.bytes();
        // Admission control: under memory pressure (global residency
        // would cross the budget's shed limit) or a chaos allocation
        // denial, hand the entry to the caller without caching it. The
        // result is bit-identical either way — a future lookup simply
        // recomputes.
        let over_budget = self
            .shed_limit
            .is_some_and(|lim| self.stats.resident_bytes().saturating_add(bytes) > lim);
        if over_budget || !lc_chaos::alloc_allowed(bytes) {
            self.stats.shed(1);
            return Ok(entry);
        }
        self.level2_resident += bytes;
        self.stats.resident_add(bytes);
        self.level2.insert(key, (Arc::clone(&entry), self.tick));
        // Evict LRU entries (never the one just inserted) until under
        // cap. Entries handed out as `Arc`s stay alive for any borrower;
        // eviction only drops the cache's reference.
        while self.level2_resident > self.cap_bytes && self.level2.len() > 1 {
            let lru = self
                .level2
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| *k)
                .expect("len > 1 guarantees a peer"); // invariant: len > 1 checked above
            let (victim, _) = self.level2.remove(&lru).expect("lru key present"); // invariant: key chosen from this map
            let freed = victim.bytes();
            self.level2_resident -= freed;
            self.stats.resident_sub(freed);
            self.stats.evict(1);
        }
        Ok(entry)
    }

    /// Number of level-2 entries currently resident.
    pub fn level2_len(&self) -> usize {
        self.level2.len()
    }
}

impl Drop for UnitPrefixCache<'_> {
    fn drop(&mut self) {
        // Return the unit's residency to the campaign-wide gauge; these
        // are natural end-of-unit releases, not evictions.
        self.stats
            .resident_sub(self.level1_resident + self.level2_resident);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ChunkedData;
    use lc_core::KernelStats;

    fn entry(payload_bytes: usize) -> PrefixEntry {
        PrefixEntry {
            outcome: StageOutcome {
                output: ChunkedData {
                    chunks: vec![vec![0u8; payload_bytes]],
                },
                enc: KernelStats::new(),
                dec: KernelStats::new(),
                applied: 1,
                skipped: 0,
            },
            times: vec![(1.0, 2.0)],
        }
    }

    #[test]
    fn level1_computes_once_then_hits() {
        let stats = CacheStats::default();
        let mut cache = UnitPrefixCache::new(u64::MAX, &stats);
        let mut computed = 0;
        for _ in 0..5 {
            let e = cache
                .level1(|| -> Result<_, ()> {
                    computed += 1;
                    Ok(entry(100))
                })
                .unwrap();
            assert_eq!(e.outcome.output.total_bytes(), 100);
        }
        assert_eq!(computed, 1);
        let r = stats.report();
        assert_eq!((r.hits, r.misses), (4, 1));
    }

    #[test]
    fn level2_lru_eviction_under_byte_cap() {
        let stats = CacheStats::default();
        // Each entry is ~4120 bytes; cap fits two entries, not three.
        let mut cache = UnitPrefixCache::new(9000, &stats);
        for key in 0..3usize {
            cache
                .level2(key, || -> Result<_, ()> { Ok(entry(4096)) })
                .unwrap();
        }
        assert_eq!(cache.level2_len(), 2, "third insert evicts the LRU");
        // Key 0 was least recently used — re-requesting it is a miss.
        let mut recomputed = false;
        cache
            .level2(0, || -> Result<_, ()> {
                recomputed = true;
                Ok(entry(4096))
            })
            .unwrap();
        assert!(recomputed);
        let r = stats.report();
        assert_eq!(r.evictions, 2, "one for key 0, one for its successor");
    }

    #[test]
    fn touched_entries_survive_eviction() {
        let stats = CacheStats::default();
        let mut cache = UnitPrefixCache::new(9000, &stats);
        for key in 0..2usize {
            cache
                .level2(key, || -> Result<_, ()> { Ok(entry(4096)) })
                .unwrap();
        }
        // Touch key 0 so key 1 becomes the LRU, then overflow.
        cache
            .level2(0, || -> Result<_, ()> { panic!("must be a hit") })
            .unwrap();
        cache
            .level2(2, || -> Result<_, ()> { Ok(entry(4096)) })
            .unwrap();
        let mut hit = true;
        cache
            .level2(0, || -> Result<_, ()> {
                hit = false;
                Ok(entry(4096))
            })
            .unwrap();
        assert!(hit, "recently-touched entry must not be the evictee");
    }

    #[test]
    fn soft_cap_always_keeps_the_live_entry() {
        let stats = CacheStats::default();
        let mut cache = UnitPrefixCache::new(1, &stats); // absurdly small
        let e = cache
            .level2(7, || -> Result<_, ()> { Ok(entry(4096)) })
            .unwrap();
        assert_eq!(cache.level2_len(), 1, "the sole entry is never evicted");
        assert_eq!(e.outcome.output.total_bytes(), 4096);
    }

    #[test]
    fn residency_peaks_then_returns_to_zero_after_drop() {
        let stats = CacheStats::default();
        {
            let mut cache = UnitPrefixCache::new(u64::MAX, &stats);
            cache
                .level1(|| -> Result<_, ()> { Ok(entry(1000)) })
                .unwrap();
            cache
                .level2(0, || -> Result<_, ()> { Ok(entry(2000)) })
                .unwrap();
        }
        let r = stats.report();
        assert!(r.peak_resident_bytes >= 3000);
        assert_eq!(stats.resident.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shed_limit_refuses_admission_under_pressure() {
        let stats = CacheStats::default();
        // entry(500).bytes() is 540; the limit admits one entry and
        // sheds the second (540 + 540 > 1000).
        let mut cache = UnitPrefixCache::new(u64::MAX, &stats).with_shed_limit(Some(1000));
        cache
            .level2(0, || -> Result<_, ()> { Ok(entry(500)) })
            .unwrap();
        assert_eq!(cache.level2_len(), 1);
        let e = cache
            .level2(1, || -> Result<_, ()> { Ok(entry(500)) })
            .unwrap();
        assert_eq!(
            e.outcome.output.total_bytes(),
            500,
            "a shed entry is still handed to the caller"
        );
        assert_eq!(cache.level2_len(), 1, "shed entries are not admitted");
        assert_eq!(stats.report().sheds, 1);
        // A later lookup for the shed key recomputes: still a
        // correctly-classified miss, bit-identical result.
        let mut recomputed = false;
        cache
            .level2(1, || -> Result<_, ()> {
                recomputed = true;
                Ok(entry(500))
            })
            .unwrap();
        assert!(recomputed);
        let r = stats.report();
        assert_eq!(r.hits + r.misses, 3);
    }

    #[test]
    fn report_hit_rate() {
        let stats = CacheStats::default();
        stats.lookup(4);
        stats.hit(3);
        stats.miss(1);
        let r = stats.report();
        assert!((r.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheReport::default().hit_rate(), 0.0);
    }

    #[test]
    fn sweep_mode_labels_and_caps() {
        assert_eq!(SweepMode::default().label(), "memoized");
        assert_eq!(SweepMode::Naive.label(), "naive");
        assert_eq!(SweepMode::Naive.per_unit_cap_bytes(8), None);
        assert_eq!(
            SweepMode::Memoized { cache_mb: 64 }.per_unit_cap_bytes(4),
            Some(16 * 1024 * 1024)
        );
    }

    #[test]
    fn errors_propagate_without_caching() {
        let stats = CacheStats::default();
        let mut cache = UnitPrefixCache::new(u64::MAX, &stats);
        let r = cache.level1(|| -> Result<PrefixEntry, &str> { Err("boom") });
        assert_eq!(r.err(), Some("boom"));
        // The failed compute must not have pinned anything: the next
        // call is a miss again.
        let mut computed = false;
        cache
            .level1(|| -> Result<_, ()> {
                computed = true;
                Ok(entry(10))
            })
            .unwrap();
        assert!(computed);
    }
}
