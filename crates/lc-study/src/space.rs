//! The pipeline space: 62 × 62 × 28 three-stage pipelines (paper §5) and
//! the subsets each figure selects.

use std::sync::Arc;

use lc_core::component::family_of;
use lc_core::{Component, ComponentKind};

/// A three-stage pipeline as *positions* into a [`Space`]'s component and
/// reducer lists (not registry indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineId {
    /// Stage-1 position into [`Space::components`].
    pub s1: u16,
    /// Stage-2 position into [`Space::components`].
    pub s2: u16,
    /// Stage-3 position into [`Space::reducers`].
    pub s3: u16,
}

/// A (possibly restricted) pipeline space.
#[derive(Clone)]
pub struct Space {
    /// Components allowed in stages 1 and 2.
    pub components: Vec<Arc<dyn Component>>,
    /// Reducers allowed in stage 3.
    pub reducers: Vec<Arc<dyn Component>>,
}

impl Space {
    /// The full space of the paper: all 62 components × all 28 reducers.
    pub fn full() -> Self {
        Self {
            components: lc_components::all().to_vec(),
            reducers: lc_components::reducers(),
        }
    }

    /// A restricted space (for tests and benches): keeps only the named
    /// families, preserving order.
    ///
    /// # Panics
    ///
    /// Panics if the restriction leaves no components or no reducers.
    pub fn restricted_to_families(families: &[&str]) -> Self {
        let keep = |c: &Arc<dyn Component>| families.contains(&family_of(c.name()));
        let components: Vec<_> = lc_components::all()
            .iter()
            .filter(|c| keep(c))
            .cloned()
            .collect();
        let reducers: Vec<_> = components
            .iter()
            .filter(|c| c.kind() == ComponentKind::Reducer)
            .cloned()
            .collect();
        assert!(!components.is_empty(), "no components left");
        assert!(
            !reducers.is_empty(),
            "no reducers left — include a reducer family"
        );
        Self {
            components,
            reducers,
        }
    }

    /// Number of pipelines in this space.
    pub fn len(&self) -> usize {
        self.components.len() * self.components.len() * self.reducers.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dense index of a pipeline id (row-major in (s1, s2, s3)).
    pub fn index(&self, id: PipelineId) -> usize {
        (id.s1 as usize * self.components.len() + id.s2 as usize) * self.reducers.len()
            + id.s3 as usize
    }

    /// Inverse of [`Space::index`].
    pub fn id_at(&self, index: usize) -> PipelineId {
        let nr = self.reducers.len();
        let nc = self.components.len();
        PipelineId {
            s1: (index / (nc * nr)) as u16,
            s2: (index / nr % nc) as u16,
            s3: (index % nr) as u16,
        }
    }

    /// Iterate all pipeline ids in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = PipelineId> + '_ {
        (0..self.len()).map(|i| self.id_at(i))
    }

    /// The three stage components of a pipeline.
    pub fn stages(&self, id: PipelineId) -> [&Arc<dyn Component>; 3] {
        [
            &self.components[id.s1 as usize],
            &self.components[id.s2 as usize],
            &self.reducers[id.s3 as usize],
        ]
    }

    /// Human-readable description like `"BIT_4 DIFF_4 RZE_4"`.
    pub fn describe(&self, id: PipelineId) -> String {
        let [a, b, c] = self.stages(id);
        format!("{} {} {}", a.name(), b.name(), c.name())
    }

    // ---- figure subsets -------------------------------------------------

    /// §6.2: pipelines where all three stages share word size `w`.
    pub fn uniform_word_size(&self, w: usize) -> Vec<PipelineId> {
        self.iter()
            .filter(|&id| self.stages(id).iter().all(|c| c.word_size() == w))
            .collect()
    }

    /// §6.3: pipelines whose first two stages are both of `kind`.
    pub fn kind_pair(&self, kind: ComponentKind) -> Vec<PipelineId> {
        self.iter()
            .filter(|&id| {
                let [a, b, _] = self.stages(id);
                a.kind() == kind && b.kind() == kind
            })
            .collect()
    }

    /// §6.4: pipelines with a given family pinned to stage 1.
    pub fn stage1_family(&self, family: &str) -> Vec<PipelineId> {
        self.iter()
            .filter(|&id| family_of(self.stages(id)[0].name()) == family)
            .collect()
    }

    /// §6.4: pipelines with one specific component pinned to stage 1.
    pub fn stage1_component(&self, name: &str) -> Vec<PipelineId> {
        self.iter()
            .filter(|&id| self.stages(id)[0].name() == name)
            .collect()
    }

    /// §6.4 (prose): pipelines with a given family pinned to stage 2 —
    /// the paper omits the Stage 2 plots but discusses RLE's behaviour
    /// there.
    pub fn stage2_family(&self, family: &str) -> Vec<PipelineId> {
        self.iter()
            .filter(|&id| family_of(self.stages(id)[1].name()) == family)
            .collect()
    }

    /// §6.4: pipelines with a given reducer family pinned to stage 3.
    pub fn stage3_family(&self, family: &str) -> Vec<PipelineId> {
        self.iter()
            .filter(|&id| family_of(self.stages(id)[2].name()) == family)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_has_107632_pipelines() {
        let s = Space::full();
        assert_eq!(s.components.len(), 62);
        assert_eq!(s.reducers.len(), 28);
        assert_eq!(s.len(), 107_632);
    }

    #[test]
    fn index_roundtrip() {
        let s = Space::full();
        for idx in [0usize, 1, 27, 28, 1735, 1736, 107_631] {
            assert_eq!(s.index(s.id_at(idx)), idx);
        }
    }

    #[test]
    fn uniform_word_size_counts_match_section_6_2() {
        let s = Space::full();
        assert_eq!(s.uniform_word_size(1).len(), 1792);
        assert_eq!(s.uniform_word_size(2).len(), 1575);
        assert_eq!(s.uniform_word_size(4).len(), 1792);
        assert_eq!(s.uniform_word_size(8).len(), 1575);
    }

    #[test]
    fn kind_pair_counts_match_section_6_3() {
        let s = Space::full();
        assert_eq!(s.kind_pair(ComponentKind::Mutator).len(), 4032);
        assert_eq!(s.kind_pair(ComponentKind::Shuffler).len(), 2800);
        assert_eq!(s.kind_pair(ComponentKind::Predictor).len(), 4032);
        assert_eq!(s.kind_pair(ComponentKind::Reducer).len(), 21_952);
    }

    #[test]
    fn stage1_family_counts_match_section_6_4() {
        let s = Space::full();
        assert_eq!(s.stage1_family("RLE").len(), 6944);
        assert_eq!(s.stage1_family("DBEFS").len(), 3472);
        assert_eq!(s.stage1_family("DBESF").len(), 3472);
        assert_eq!(s.stage1_family("TUPL").len(), 10_416);
        assert_eq!(s.stage1_component("BIT_4").len(), 1736);
    }

    #[test]
    fn stage3_family_counts_match_section_6_4() {
        let s = Space::full();
        for fam in ["CLOG", "HCLOG", "RARE", "RAZE", "RLE", "RRE", "RZE"] {
            assert_eq!(s.stage3_family(fam).len(), 15_376, "{fam}");
        }
    }

    #[test]
    fn restricted_space() {
        let s = Space::restricted_to_families(&["TCMS", "RLE"]);
        assert_eq!(s.components.len(), 8); // TCMS×4 + RLE×4
        assert_eq!(s.reducers.len(), 4);
        assert_eq!(s.len(), 8 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "reducer")]
    fn restriction_without_reducers_panics() {
        Space::restricted_to_families(&["TCMS"]);
    }

    #[test]
    fn describe_pipeline() {
        let s = Space::full();
        let id = s.id_at(0);
        let desc = s.describe(id);
        assert_eq!(desc.split_whitespace().count(), 3);
    }
}
