//! Run-to-run regression comparison.
//!
//! `reproduce` writes `run.json` (see [`crate::report::to_json`]); this
//! module diffs two such dumps so CI — or a user who just tweaked a cost
//! constant — can see exactly which figure groups moved and whether any
//! finding flipped.

use lc_json::Value;

/// A change between two runs for one figure group.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Figure number.
    pub figure: u32,
    /// Group label.
    pub group: String,
    /// Compiler legend entry.
    pub compiler: String,
    /// Baseline median.
    pub baseline: f64,
    /// Current median.
    pub current: f64,
}

impl Drift {
    /// Relative change, signed (`+0.08` = 8% higher than baseline).
    pub fn relative(&self) -> f64 {
        if self.baseline == 0.0 {
            f64::INFINITY
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

/// Outcome of comparing two `run.json` dumps.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Groups whose median moved more than the threshold.
    pub drifted: Vec<Drift>,
    /// Findings that hold in one run but not the other (`(id, baseline
    /// holds, current holds)`).
    pub flipped_findings: Vec<(String, bool, bool)>,
    /// Groups present in exactly one of the runs.
    pub unmatched_groups: usize,
}

fn groups_of(run: &Value) -> Vec<(u32, String, String, f64)> {
    let mut out = Vec::new();
    let Some(figures) = run["figures"].as_array() else {
        return out;
    };
    for fig in figures {
        let number = fig["figure"].as_u64().unwrap_or(0) as u32;
        let Some(groups) = fig["groups"].as_array() else {
            continue;
        };
        for g in groups {
            out.push((
                number,
                g["group"].as_str().unwrap_or("").to_string(),
                g["compiler"].as_str().unwrap_or("").to_string(),
                g["lv"]["median"].as_f64().unwrap_or(f64::NAN),
            ));
        }
    }
    out
}

/// Compare two run dumps; medians moving more than `threshold`
/// (relative, e.g. 0.05 = 5%) are reported as drift.
///
/// Returns an error string when either input is not a `run.json` dump.
pub fn compare(
    baseline_json: &str,
    current_json: &str,
    threshold: f64,
) -> Result<Comparison, String> {
    let baseline = Value::parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    let current = Value::parse(current_json).map_err(|e| format!("current: {e}"))?;
    for (name, v) in [("baseline", &baseline), ("current", &current)] {
        if !v["figures"].is_array() || !v["findings"].is_array() {
            return Err(format!("{name}: not a reproduce run.json dump"));
        }
    }

    let mut cmp = Comparison::default();
    let base_groups = groups_of(&baseline);
    let cur_groups = groups_of(&current);
    for (fig, group, compiler, b_median) in &base_groups {
        match cur_groups
            .iter()
            .find(|(f, g, c, _)| f == fig && g == group && c == compiler)
        {
            Some((_, _, _, c_median)) => {
                let d = Drift {
                    figure: *fig,
                    group: group.clone(),
                    compiler: compiler.clone(),
                    baseline: *b_median,
                    current: *c_median,
                };
                if d.relative().abs() > threshold {
                    cmp.drifted.push(d);
                }
            }
            None => cmp.unmatched_groups += 1,
        }
    }
    cmp.unmatched_groups += cur_groups
        .iter()
        .filter(|(f, g, c, _)| {
            !base_groups
                .iter()
                .any(|(bf, bg, bc, _)| bf == f && bg == g && bc == c)
        })
        .count();

    // Findings that flipped.
    let findings = |v: &Value| -> Vec<(String, bool)> {
        v["findings"]
            .as_array()
            .map(|a| {
                a.iter()
                    .map(|f| {
                        (
                            f["id"].as_str().unwrap_or("").to_string(),
                            f["holds"].as_bool().unwrap_or(false),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_f = findings(&baseline);
    for (id, cur_holds) in findings(&current) {
        if let Some((_, base_holds)) = base_f.iter().find(|(bid, _)| *bid == id) {
            if *base_holds != cur_holds {
                cmp.flipped_findings.push((id, *base_holds, cur_holds));
            }
        }
    }
    Ok(cmp)
}

/// Render a comparison as text.
pub fn render(cmp: &Comparison, threshold: f64) -> String {
    let mut out = String::new();
    if cmp.drifted.is_empty() && cmp.flipped_findings.is_empty() {
        out.push_str(&format!(
            "no drift beyond {:.1}% and no finding flips\n",
            threshold * 100.0
        ));
    }
    for d in &cmp.drifted {
        out.push_str(&format!(
            "fig{:02} {:24} {:6} {:9.2} -> {:9.2} ({:+.1}%)\n",
            d.figure,
            d.group,
            d.compiler,
            d.baseline,
            d.current,
            d.relative() * 100.0
        ));
    }
    for (id, was, now) in &cmp.flipped_findings {
        out.push_str(&format!(
            "finding {id}: holds {was} -> {now}  <-- REGRESSION\n"
        ));
    }
    if cmp.unmatched_groups > 0 {
        out.push_str(&format!(
            "{} groups present in only one run\n",
            cmp.unmatched_groups
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, StudyConfig};
    use crate::figures::{figure, FigId};
    use crate::report::to_json;

    fn run_json() -> String {
        let m = run_campaign(&StudyConfig::quick());
        let figs = vec![figure(&m, FigId::Fig2), figure(&m, FigId::Fig3)];
        to_json(&m, &figs)
    }

    #[test]
    fn identical_runs_show_no_drift() {
        let j = run_json();
        let cmp = compare(&j, &j, 0.01).unwrap();
        assert!(cmp.drifted.is_empty());
        assert!(cmp.flipped_findings.is_empty());
        assert_eq!(cmp.unmatched_groups, 0);
        assert!(render(&cmp, 0.01).contains("no drift"));
    }

    #[test]
    fn perturbed_medians_are_reported() {
        let j = run_json();
        let mut v = Value::parse(&j).unwrap();
        let median = &mut v["figures"][0]["groups"][0]["lv"]["median"];
        let old = median.as_f64().unwrap();
        *median = Value::from(old * 1.5);
        let perturbed = v.dump();
        let cmp = compare(&j, &perturbed, 0.05).unwrap();
        assert_eq!(cmp.drifted.len(), 1);
        assert!((cmp.drifted[0].relative() - 0.5).abs() < 1e-9);
        assert!(render(&cmp, 0.05).contains("+50.0%"));
    }

    #[test]
    fn flipped_finding_is_a_regression() {
        let j = run_json();
        let mut v = Value::parse(&j).unwrap();
        let holds = &mut v["findings"][0]["holds"];
        *holds = Value::from(!holds.as_bool().unwrap());
        let perturbed = v.dump();
        let cmp = compare(&j, &perturbed, 0.05).unwrap();
        assert_eq!(cmp.flipped_findings.len(), 1);
        assert!(render(&cmp, 0.05).contains("REGRESSION"));
    }

    #[test]
    fn garbage_inputs_error() {
        assert!(compare("not json", "{}", 0.05).is_err());
        assert!(compare("{}", "{}", 0.05).is_err());
    }
}
