//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [--figure all|2|3|…|15] [--scale D] [--threads N]
//!           [--families TCMS,BIT,…] [--verify] [--out DIR] [--full]
//! ```
//!
//! By default this runs the *full* pipeline space (107,632 pipelines) over
//! all 13 synthetic SP inputs at 1/512 of the paper's input sizes (the
//! kernel statistics are extrapolated back to paper scale — see
//! `lc_study::campaign`), simulates all 11 platform combinations at both
//! `-O1` and `-O3`, prints every figure as a letter-value table, writes
//! per-figure CSVs under `--out` (default `experiments/`), and emits
//! `EXPERIMENTS.md` with the paper-vs-measured findings checklist.
//!
//! `--families` restricts the component set for a fast smoke run.
//!
//! Fault tolerance: every run journals completed work units to
//! `<out>/journal.jsonl`; `--resume` picks up where a killed run left
//! off (byte-identical `run.json`), `--unit-deadline SECS` quarantines
//! overtime work units instead of hanging, and any quarantined unit
//! turns the exit code to 5 after all outputs are still written.
//! Journal appends are crash-consistent single-buffer writes with an
//! `--fsync {never,checkpoint,always}` durability policy; every other
//! artifact is published by atomic temp-file+rename, so readers see old
//! or new bytes, never a mixture. A lock file in `--out` rejects
//! concurrent campaigns on the same directory. SIGINT/SIGTERM stop the
//! campaign cooperatively at the next unit boundary, checkpoint the
//! journal, and exit with code 7 (interrupted-but-resumable);
//! `--mem-budget-mb MB` caps memory by shedding prefix-cache bytes and
//! degrading the worker count.
//!
//! Observability: a progress heartbeat (units done, units/s, ETA,
//! quarantine count) prints to stderr every 10 s when stderr is a
//! terminal — `--heartbeat SECS` forces it on with a custom interval,
//! `--quiet` silences it. `--telemetry-dir DIR` enables span/metric
//! collection and writes `trace.json` (Chrome trace-event format,
//! loadable in Perfetto), `events.jsonl`, and `metrics.json` there.
//!
//! Performance: the campaign memoizes shared stage-1 and (stage-1,
//! stage-2) prefix outputs in a byte-capped per-unit cache (default
//! 512 MB campaign-wide). `--prefix-cache-mb MB` resizes the budget;
//! `--no-prefix-cache` re-executes every stage of every pipeline from
//! scratch (the naive baseline the cache is benchmarked against).
//!
//! Static analysis: the campaign deduplicates provably-equivalent
//! pipelines up front from the component contracts (commuting mutator ×
//! tuple-shuffler stage pairs — 616 of the 107,632 full-space pipelines
//! are measured as copies of their representative ordering).
//! `--prune canonical` deduplicates whole abstract-interpretation
//! equivalence classes instead (8,178 certified members on the full
//! registry; compressed sizes exact, member throughputs inherited from
//! the class representative); `--no-analyze-prune` (alias
//! `--prune off`) restores the paper's full enumeration.
//!
//! Sharded execution: `--shard K/N` runs only the work units shard K
//! owns (deterministic round-robin partition), journaling to
//! `journal.K-of-N.jsonl` under its own `.campaign.lock.K-of-N`, and
//! produces no figures — shards are meaningful only merged.
//! `--supervise N [--workers M]` spawns the N shards as subprocesses,
//! retries crashed shards with bounded deterministic backoff (resume
//! continues from the shard journal), quarantines a shard that fails
//! more than `--max-shard-retries` times (exit 5) instead of failing
//! the campaign, then merges and finishes the run in-process.
//! `--merge` fuses an existing complete shard set into `journal.jsonl`
//! and completes the campaign from it; the result is byte-identical to
//! the single-process run. `--chaos-kill SEED` arms the lc-chaos
//! unit-boundary SIGKILL site (in shard children the supervisor derives
//! a distinct sub-seed per shard and attempt) — the soak harness for
//! the supervisor itself.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use gpu_sim::OptLevel;
use lc_chaos::fs::{atomic_write, LockFile, SyncPolicy};
use lc_data::Scale;
use lc_parallel::CancelToken;
use lc_study::{
    figures, report, run_campaign_with, shard, supervise, CampaignOptions, FigId, PruneMode,
    ShardSpec, Space, StudyConfig, SweepMode,
};

/// Exit code when work units were quarantined (run completed, but some
/// pipelines carry no data).
const EXIT_QUARANTINE: u8 = 5;
/// Exit code when SIGINT/SIGTERM stopped the campaign at a unit
/// boundary: the journal is checkpointed and `--resume` continues to a
/// byte-identical `run.json`.
const EXIT_INTERRUPTED: u8 = 7;

struct Args {
    figures: Vec<FigId>,
    ratio: bool,
    stage2: bool,
    svg: bool,
    baseline: Option<PathBuf>,
    scale: u32,
    threads: usize,
    families: Option<Vec<String>>,
    files: Option<Vec<String>>,
    verify: bool,
    out: PathBuf,
    resume: bool,
    unit_deadline: Option<Duration>,
    heartbeat: Option<Duration>,
    quiet: bool,
    telemetry_dir: Option<PathBuf>,
    sweep: SweepMode,
    prune: PruneMode,
    fsync: SyncPolicy,
    mem_budget_mb: Option<usize>,
    shard: Option<ShardSpec>,
    supervise: Option<usize>,
    workers: Option<usize>,
    max_shard_retries: u32,
    chaos_kill: Option<u64>,
    merge: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figures: FigId::ALL.to_vec(),
        ratio: false,
        stage2: false,
        svg: true,
        baseline: None,
        scale: 512,
        threads: lc_parallel::default_threads(),
        families: None,
        files: None,
        verify: false,
        out: PathBuf::from("experiments"),
        resume: false,
        unit_deadline: None,
        heartbeat: None,
        quiet: false,
        telemetry_dir: None,
        sweep: SweepMode::default(),
        prune: PruneMode::default(),
        fsync: SyncPolicy::default(),
        mem_budget_mb: None,
        shard: None,
        supervise: None,
        workers: None,
        max_shard_retries: 3,
        chaos_kill: None,
        merge: false,
    };
    // Heartbeat defaults on for interactive runs; --quiet suppresses it,
    // --heartbeat forces it (e.g. for log-captured batch runs).
    let mut heartbeat_flag: Option<u64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--figure" => {
                let v = value("--figure")?;
                if v == "all" {
                    args.figures = FigId::ALL.to_vec();
                } else {
                    args.figures = v
                        .split(',')
                        .map(|f| {
                            FigId::parse(f).ok_or_else(|| format!("unknown figure {f:?} (2..15)"))
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if args.scale == 0 {
                    return Err("--scale must be positive (1 = paper size)".into());
                }
            }
            "--full" => args.scale = 1,
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--families" => {
                args.families = Some(
                    value("--families")?
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--files" => {
                args.files = Some(value("--files")?.split(',').map(str::to_string).collect());
            }
            "--tables" => {
                print!("{}", lc_study::tables::all_tables());
                std::process::exit(0);
            }
            "--ratio" => args.ratio = true,
            "--stage2" => args.stage2 = true,
            "--no-svg" => args.svg = false,
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--verify" => args.verify = true,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--resume" => args.resume = true,
            "--quiet" => args.quiet = true,
            "--heartbeat" => {
                let secs: u64 = value("--heartbeat")?
                    .parse()
                    .map_err(|e| format!("--heartbeat: {e}"))?;
                if secs == 0 {
                    return Err("--heartbeat must be positive (seconds)".into());
                }
                heartbeat_flag = Some(secs);
            }
            "--telemetry-dir" => {
                args.telemetry_dir = Some(PathBuf::from(value("--telemetry-dir")?));
            }
            "--prefix-cache-mb" => {
                let mb: usize = value("--prefix-cache-mb")?
                    .parse()
                    .map_err(|e| format!("--prefix-cache-mb: {e}"))?;
                args.sweep = SweepMode::Memoized { cache_mb: mb };
            }
            "--no-prefix-cache" => args.sweep = SweepMode::Naive,
            "--fsync" => {
                let v = value("--fsync")?;
                args.fsync = SyncPolicy::parse(&v)
                    .ok_or_else(|| format!("--fsync: {v:?} is not never|checkpoint|always"))?;
            }
            "--mem-budget-mb" => {
                let mb: usize = value("--mem-budget-mb")?
                    .parse()
                    .map_err(|e| format!("--mem-budget-mb: {e}"))?;
                if mb == 0 {
                    return Err("--mem-budget-mb must be positive".into());
                }
                args.mem_budget_mb = Some(mb);
            }
            "--no-analyze-prune" => args.prune = PruneMode::Off,
            "--prune" => {
                let v = value("--prune")?;
                args.prune = PruneMode::from_label(&v).ok_or_else(|| {
                    format!("--prune: unknown mode {v:?} (commute|canonical|off)")
                })?;
            }
            "--shard" => {
                let v = value("--shard")?;
                args.shard = Some(ShardSpec::parse(&v).map_err(|e| format!("--shard: {e}"))?);
            }
            "--supervise" => {
                let n: usize = value("--supervise")?
                    .parse()
                    .map_err(|e| format!("--supervise: {e}"))?;
                if n == 0 || n > shard::MAX_SHARDS {
                    return Err(format!(
                        "--supervise: shard count must be 1..={}",
                        shard::MAX_SHARDS
                    ));
                }
                args.supervise = Some(n);
            }
            "--workers" => {
                let m: usize = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if m == 0 {
                    return Err("--workers must be positive".into());
                }
                args.workers = Some(m);
            }
            "--max-shard-retries" => {
                args.max_shard_retries = value("--max-shard-retries")?
                    .parse()
                    .map_err(|e| format!("--max-shard-retries: {e}"))?;
            }
            "--chaos-kill" => {
                args.chaos_kill = Some(
                    value("--chaos-kill")?
                        .parse()
                        .map_err(|e| format!("--chaos-kill: {e}"))?,
                );
            }
            "--merge" => args.merge = true,
            "--unit-deadline" => {
                let secs: u64 = value("--unit-deadline")?
                    .parse()
                    .map_err(|e| format!("--unit-deadline: {e}"))?;
                if secs == 0 {
                    return Err("--unit-deadline must be positive (seconds)".into());
                }
                args.unit_deadline = Some(Duration::from_secs(secs));
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--figure all|2,3,…] [--tables] [--scale D] [--full] \
                     [--threads N] [--families A,B,…] [--files f,…] [--verify] [--out DIR] \
                     [--resume] [--unit-deadline SECS] [--heartbeat SECS] [--quiet] \
                     [--telemetry-dir DIR] [--prefix-cache-mb MB] [--no-prefix-cache] \
                     [--prune commute|canonical|off] [--no-analyze-prune] \
                     [--fsync never|checkpoint|always] [--mem-budget-mb MB] \
                     [--shard K/N] [--supervise N [--workers M] [--max-shard-retries R]] \
                     [--merge] [--chaos-kill SEED]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.shard.is_some() && (args.supervise.is_some() || args.merge) {
        return Err("--shard runs one shard; it cannot combine with --supervise or --merge".into());
    }
    if args.supervise.is_some() && args.merge {
        return Err("--supervise merges automatically; drop --merge".into());
    }
    if args.workers.is_some() && args.supervise.is_none() {
        return Err("--workers only applies with --supervise N".into());
    }
    args.heartbeat = match (args.quiet, heartbeat_flag) {
        (true, _) => None,
        (false, Some(secs)) => Some(Duration::from_secs(secs)),
        (false, None) => {
            use std::io::IsTerminal;
            std::io::stderr()
                .is_terminal()
                .then(|| Duration::from_secs(10))
        }
    };
    Ok(args)
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Arm the unit-boundary SIGKILL site for processes that actually run
    // work units. The supervisor never installs it in-process: it hands
    // each shard launch a derived sub-seed instead, so the post-merge
    // finishing run cannot be killed by its own soak harness.
    if let Some(seed) = args.chaos_kill {
        if args.supervise.is_none() && !args.merge {
            std::mem::forget(lc_chaos::install(lc_chaos::FaultPlan::kill(seed)));
        }
    }

    let space = match &args.families {
        None => Space::full(),
        Some(fams) => {
            let refs: Vec<&str> = fams.iter().map(String::as_str).collect();
            Space::restricted_to_families(&refs)
        }
    };
    let files: Vec<_> = match &args.files {
        None => lc_data::SP_FILES.iter().collect(),
        Some(names) => {
            let mut v = Vec::new();
            for n in names {
                match lc_data::file_by_name(n) {
                    Some(f) => v.push(f),
                    None => {
                        eprintln!("error: unknown SP file {n:?}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            v
        }
    };

    let needs_o1 = args
        .figures
        .iter()
        .any(|f| matches!(f, FigId::Fig14 | FigId::Fig15));
    let opt_levels = if needs_o1 {
        vec![OptLevel::O1, OptLevel::O3]
    } else {
        vec![OptLevel::O3]
    };

    let sc = StudyConfig {
        space,
        scale: Scale::denominator(args.scale),
        threads: args.threads,
        files,
        opt_levels,
        verify: args.verify,
    };
    if args.telemetry_dir.is_some() {
        lc_telemetry::enable();
    }
    if !args.quiet {
        eprintln!(
            "campaign: {} pipelines x {} inputs (scale 1/{}) on {} threads…",
            sc.space.len(),
            sc.files.len(),
            args.scale,
            sc.threads
        );
    }
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("error: cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    // Always-on black box: armed for the whole campaign regardless of
    // --telemetry-dir, dumped to the output directory on the abnormal
    // exit paths (panic, interrupt, quarantine) where the last recorded
    // events are exactly what a post-mortem needs. Shard children get
    // their own file so N shards never clobber one black box.
    let flight_path = match &args.shard {
        Some(spec) => args.out.join(format!("flight.{}.jsonl", spec.label())),
        None => args.out.join("flight.jsonl"),
    };
    lc_telemetry::flight::arm(0);
    lc_telemetry::flight::dump_on_panic(flight_path.clone());
    // Held until process exit: a second campaign on the same output
    // directory would interleave journal appends and corrupt state.
    // A shard child locks only its own shard identity, so N shards
    // sharing one output directory never false-conflict (the supervisor
    // holds the whole-campaign lock around them).
    let _lock = match &args.shard {
        Some(spec) => LockFile::acquire_named(&args.out, &spec.lock_name()),
        None => LockFile::acquire(&args.out),
    };
    let _lock = match _lock {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: kind=lock exit=1 {e}");
            return ExitCode::FAILURE;
        }
    };
    let cancel = match CancelToken::watching_signals() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: kind=signal exit=1 {e}");
            return ExitCode::FAILURE;
        }
    };

    // Supervised mode: run the N shards as subprocesses, then fall
    // through to the single-process path which resumes from the merged
    // journal (recomputing nothing) and writes all artifacts.
    if let Some(n) = args.supervise {
        match run_supervised(&args, n, &cancel) {
            Ok(()) => args.resume = true,
            Err(code) => {
                if code == ExitCode::from(EXIT_INTERRUPTED) {
                    dump_flight(&flight_path, args.quiet);
                }
                return code;
            }
        }
    } else if args.merge {
        let merged = args.out.join("journal.jsonl");
        match shard::merge_shards(&args.out, &merged) {
            Ok(rep) => {
                if !args.quiet {
                    eprintln!(
                        "merge: fused {} shard journals into {} ({} units, {} quarantined, \
                         {} torn bytes dropped)",
                        rep.shards,
                        merged.display(),
                        rep.units,
                        rep.quarantined,
                        rep.torn_bytes
                    );
                }
                args.resume = true;
            }
            Err(e) => {
                eprintln!("error: kind=merge exit=1 {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let args = args; // mode dispatch done; immutable from here on

    let t0 = Instant::now();
    let journal_path = match &args.shard {
        Some(spec) => args.out.join(spec.journal_file()),
        None => args.out.join("journal.jsonl"),
    };
    let opts = CampaignOptions {
        journal: Some(journal_path),
        resume: args.resume,
        unit_deadline: args.unit_deadline,
        isolate: true,
        heartbeat: args.heartbeat,
        sweep: args.sweep,
        prune: args.prune,
        fsync: args.fsync,
        mem_budget_mb: args.mem_budget_mb,
        cancel: Some(cancel.clone()),
        shard: args.shard,
    };
    let outcome = match run_campaign_with(&sc, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: kind=journal exit=1 {e}");
            return ExitCode::FAILURE;
        }
    };
    if outcome.interrupted {
        dump_flight(&flight_path, args.quiet);
        eprintln!(
            "error: kind=interrupt exit={EXIT_INTERRUPTED} campaign stopped by signal after \
             {} unit(s); journal is checkpointed — rerun with --resume to continue",
            outcome.executed_units + outcome.resumed_units
        );
        return ExitCode::from(EXIT_INTERRUPTED);
    }
    // A shard child's job ends at its journal: figures, run.json, and
    // EXPERIMENTS.md only make sense for the merged whole.
    if let Some(spec) = &args.shard {
        if !args.quiet {
            eprintln!(
                "shard {}: done in {:.1}s ({} units executed, {} resumed, {} quarantined)",
                spec.label(),
                t0.elapsed().as_secs_f64(),
                outcome.executed_units,
                outcome.resumed_units,
                outcome.quarantined.len()
            );
        }
        if !outcome.quarantined.is_empty() {
            dump_flight(&flight_path, args.quiet);
            eprintln!(
                "error: kind=quarantine exit={EXIT_QUARANTINE} shard {} quarantined {} work \
                 unit(s); their records are in the shard journal",
                spec.label(),
                outcome.quarantined.len()
            );
            return ExitCode::from(EXIT_QUARANTINE);
        }
        return ExitCode::SUCCESS;
    }
    let m = outcome.measurements;
    if !args.quiet {
        eprintln!(
            "campaign done in {:.1}s ({} units executed, {} resumed from journal)",
            t0.elapsed().as_secs_f64(),
            outcome.executed_units,
            outcome.resumed_units
        );
        match args.sweep {
            SweepMode::Memoized { .. } => eprintln!(
                "prefix cache: {:.1}% hit rate ({} hits, {} misses, {} evictions, \
                 {} shed, peak {:.1} MB resident)",
                100.0 * outcome.cache.hit_rate(),
                outcome.cache.hits,
                outcome.cache.misses,
                outcome.cache.evictions,
                outcome.cache.sheds,
                outcome.cache.peak_resident_mb()
            ),
            SweepMode::Naive => eprintln!(
                "prefix cache: disabled ({} stage evaluations recomputed)",
                outcome.cache.misses
            ),
        }
        match args.prune {
            PruneMode::Commute => eprintln!(
                "analyze prune: {} commuting stage pairs, {} pipelines deduplicated \
                 (plan in {:.1} ms; --no-analyze-prune for full enumeration)",
                outcome.prune.commuting_pairs,
                outcome.prune.pruned_pipelines,
                outcome.prune.analysis.as_secs_f64() * 1e3
            ),
            PruneMode::Canonical => eprintln!(
                "analyze prune: canonical — {} equivalence classes, {} certified \
                 members deduplicated, class map {:016x} (plan in {:.1} ms)",
                outcome.prune.classes,
                outcome.prune.pruned_pipelines,
                outcome.prune.class_map,
                outcome.prune.analysis.as_secs_f64() * 1e3
            ),
            PruneMode::Off => {
                eprintln!("analyze prune: off (paper-faithful full enumeration)")
            }
        }
    }

    // Telemetry exports: everything the instrumented campaign recorded.
    if let Some(dir) = &args.telemetry_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let events = lc_telemetry::drain();
        let write = |name: &str, contents: String| -> Result<(), String> {
            let path = dir.join(name);
            atomic_write(&path, contents.as_bytes(), args.fsync)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))
        };
        let result = write("trace.json", lc_telemetry::export::chrome_trace(&events))
            .and_then(|()| write("events.jsonl", lc_telemetry::export::events_jsonl(&events)))
            .and_then(|()| {
                write(
                    "metrics.json",
                    lc_telemetry::export::metrics_value().pretty(),
                )
            });
        if let Err(e) = result {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!(
                "telemetry: {} events -> {}/{{trace.json,events.jsonl,metrics.json}}",
                events.len(),
                dir.display()
            );
        }
    }

    let mut figs = Vec::new();
    for id in &args.figures {
        let fig = figures::figure(&m, *id);
        print!("{}", figures::render(&fig));
        println!();
        let csv_path = args.out.join(format!("fig{:02}.csv", id.number()));
        if let Err(e) = atomic_write(&csv_path, figures::to_csv(&fig).as_bytes(), args.fsync) {
            eprintln!("error: cannot write {}: {e}", csv_path.display());
            return ExitCode::FAILURE;
        }
        if args.svg {
            let svg_path = args.out.join(format!("fig{:02}.svg", id.number()));
            if let Err(e) = atomic_write(
                &svg_path,
                lc_study::svg::figure_svg(&fig).as_bytes(),
                args.fsync,
            ) {
                eprintln!("error: cannot write {}: {e}", svg_path.display());
                return ExitCode::FAILURE;
            }
        }
        figs.push(fig);
    }

    if args.stage2 {
        for dir in [gpu_sim::Direction::Encode, gpu_sim::Direction::Decode] {
            let fig = figures::stage2_figure(&m, dir);
            println!(
                "Extension: {:?} throughputs by component in Stage 2 (paper omits this plot)",
                dir
            );
            print!("{}", figures::render(&fig));
            println!();
            let name = format!(
                "stage2_{}.csv",
                if dir == gpu_sim::Direction::Encode {
                    "encode"
                } else {
                    "decode"
                }
            );
            let _ = atomic_write(
                &args.out.join(name),
                figures::to_csv(&fig).as_bytes(),
                args.fsync,
            );
        }
    }
    if args.ratio {
        print!("{}", lc_study::ratio::render_report(&m, 15));
        println!();
    }

    // Machine-readable dump for downstream tooling.
    let current_json = report::to_json(&m, &figs);
    let json_path = args.out.join("run.json");
    if let Err(e) = atomic_write(&json_path, current_json.as_bytes(), args.fsync) {
        eprintln!("error: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    if let Some(baseline_path) = &args.baseline {
        match std::fs::read_to_string(baseline_path) {
            Ok(baseline_json) => {
                match lc_study::compare::compare(&baseline_json, &current_json, 0.05) {
                    Ok(cmp) => {
                        println!(
                            "--- drift vs {} (5% threshold) ---",
                            baseline_path.display()
                        );
                        print!("{}", lc_study::compare::render(&cmp, 0.05));
                    }
                    Err(e) => eprintln!("baseline comparison failed: {e}"),
                }
            }
            Err(e) => eprintln!("cannot read baseline {}: {e}", baseline_path.display()),
        }
    }

    // Findings checklist + EXPERIMENTS.md.
    let md = report::experiments_markdown(&m, &figs);
    let md_path = args.out.join("EXPERIMENTS.md");
    if let Err(e) = atomic_write(&md_path, md.as_bytes(), args.fsync) {
        eprintln!("error: cannot write {}: {e}", md_path.display());
        return ExitCode::FAILURE;
    }
    let findings = report::findings(&m);
    let held = findings.iter().filter(|f| f.holds).count();
    println!(
        "findings: {held}/{} paper claims reproduced",
        findings.len()
    );
    for f in &findings {
        println!(
            "  [{}] {:32} {}",
            if f.holds { "ok" } else { "MISS" },
            f.id,
            f.measured
        );
    }
    println!(
        "wrote {} and per-figure CSVs to {}",
        md_path.display(),
        args.out.display()
    );

    if !outcome.quarantined.is_empty() {
        let report_path = args.out.join("quarantine.txt");
        let mut lines = String::new();
        for q in &outcome.quarantined {
            lines.push_str(&format!(
                "file={} s1={} trace=[{}] elapsed_ms={} stage_ms={:?} reason={:?}\n",
                q.file,
                q.component,
                q.stage_trace,
                q.timing.elapsed_ms,
                q.timing.stage_ms,
                q.reason
            ));
        }
        let _ = atomic_write(&report_path, lines.as_bytes(), args.fsync);
        dump_flight(&flight_path, args.quiet);
        eprintln!(
            "error: kind=quarantine exit={EXIT_QUARANTINE} {} work unit(s) quarantined; \
             affected pipelines carry no data (see {})",
            outcome.quarantined.len(),
            report_path.display()
        );
        return ExitCode::from(EXIT_QUARANTINE);
    }
    ExitCode::SUCCESS
}

/// Run the N shard subprocesses under the crash supervisor. `Ok(())`
/// means every shard completed (unit-level quarantines included — they
/// surface through the merged journal) and the merged `journal.jsonl`
/// is in place; the caller finishes the campaign by resuming from it.
fn run_supervised(args: &Args, n: usize, cancel: &CancelToken) -> Result<(), ExitCode> {
    let exe = std::env::current_exe().map_err(|e| {
        eprintln!("error: kind=supervise exit=1 cannot locate own binary: {e}");
        ExitCode::FAILURE
    })?;
    let workers = args.workers.unwrap_or_else(|| n.min(4));
    if !args.quiet {
        eprintln!(
            "supervise: {n} shards, {workers} concurrent, {} retries per shard",
            args.max_shard_retries
        );
    }
    let command_for = |spec: &ShardSpec, attempt: u32| {
        let mut c = std::process::Command::new(&exe);
        c.arg("--shard").arg(spec.meta_label());
        // Resume unconditionally: attempt > 0 continues the crashed
        // run's journal, attempt 0 picks up a pre-existing one (e.g. a
        // supervisor that was itself killed and relaunched).
        c.arg("--resume");
        // Everything fingerprint-relevant must match across shards and
        // the finishing run, or resume/merge will (correctly) refuse.
        c.arg("--figure").arg(figure_list(&args.figures));
        c.arg("--scale").arg(args.scale.to_string());
        c.arg("--threads").arg(args.threads.to_string());
        if let Some(fams) = &args.families {
            c.arg("--families").arg(fams.join(","));
        }
        if let Some(files) = &args.files {
            c.arg("--files").arg(files.join(","));
        }
        if args.verify {
            c.arg("--verify");
        }
        c.arg("--out").arg(&args.out);
        c.arg("--prune").arg(args.prune.label());
        c.arg("--fsync").arg(args.fsync.label());
        match args.sweep {
            SweepMode::Memoized { cache_mb } => {
                c.arg("--prefix-cache-mb").arg(cache_mb.to_string());
            }
            SweepMode::Naive => {
                c.arg("--no-prefix-cache");
            }
        }
        if let Some(d) = args.unit_deadline {
            c.arg("--unit-deadline").arg(d.as_secs().to_string());
        }
        if let Some(mb) = args.mem_budget_mb {
            c.arg("--mem-budget-mb").arg(mb.to_string());
        }
        c.arg("--quiet");
        // Soak mode: each (shard, attempt) gets a distinct derived
        // seed, so a relaunch is not doomed to die at the same unit
        // boundary and the retry loop demonstrably converges.
        if let Some(base) = args.chaos_kill {
            let sub = lc_chaos::splitmix64(
                base ^ lc_chaos::splitmix64(((spec.index as u64) << 32) | attempt as u64),
            );
            c.arg("--chaos-kill").arg(sub.to_string());
        }
        c.stdout(std::process::Stdio::null());
        c.stderr(std::process::Stdio::inherit());
        c
    };
    let report = supervise::run_supervisor(n, workers, args.max_shard_retries, cancel, command_for)
        .map_err(|e| {
            eprintln!("error: kind=supervise exit=1 {e}");
            ExitCode::FAILURE
        })?;
    if report.interrupted {
        eprintln!(
            "error: kind=interrupt exit={EXIT_INTERRUPTED} supervision stopped by signal; \
             shard journals are checkpointed — rerun the same command to continue"
        );
        return Err(ExitCode::from(EXIT_INTERRUPTED));
    }
    if !args.quiet {
        for s in &report.shards {
            eprintln!(
                "supervise: shard {} -> {:?} in {} attempt(s)",
                s.spec.label(),
                s.outcome,
                s.attempts
            );
        }
        eprintln!(
            "supervise: {n} shards finished in {:.1}s wall",
            report.wall.as_secs_f64()
        );
    }
    if !report.all_done() {
        // Shard-level quarantine: the campaign is not failed — every
        // other shard's journal holds its completed units — but there
        // is no complete set to merge. Record what happened and hand
        // the operator the exit-5 contract.
        let report_path = args.out.join("shard_quarantine.txt");
        let mut lines = String::new();
        for s in report.quarantined() {
            if let supervise::ShardOutcome::ShardQuarantined { last_status } = &s.outcome {
                lines.push_str(&format!(
                    "shard={} attempts={} last_status={}\n",
                    s.spec.label(),
                    s.attempts,
                    last_status
                ));
            }
        }
        let _ = atomic_write(&report_path, lines.as_bytes(), args.fsync);
        eprintln!(
            "error: kind=shard-quarantine exit={EXIT_QUARANTINE} {} shard(s) failed \
             persistently (see {}); completed shards keep their journals — fix the cause, \
             re-run the failed shard(s) with --shard, then --merge",
            report.quarantined().count(),
            report_path.display()
        );
        return Err(ExitCode::from(EXIT_QUARANTINE));
    }
    let merged = args.out.join("journal.jsonl");
    let rep = shard::merge_shards(&args.out, &merged).map_err(|e| {
        eprintln!("error: kind=merge exit=1 {e}");
        ExitCode::FAILURE
    })?;
    if !args.quiet {
        eprintln!(
            "merge: fused {} shard journals into {} ({} units, {} quarantined, {} torn \
             bytes dropped)",
            rep.shards,
            merged.display(),
            rep.units,
            rep.quarantined,
            rep.torn_bytes
        );
    }
    Ok(())
}

/// Render the figure selection back into `--figure` syntax for child
/// processes (the selection decides whether -O1 platforms are swept, so
/// it is fingerprint-relevant and must match across shards).
fn figure_list(figs: &[FigId]) -> String {
    if figs == FigId::ALL {
        return "all".to_string();
    }
    figs.iter()
        .map(|f| f.number().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Publish the flight-recorder black box; failure to dump is reported
/// but never masks the campaign's own exit code.
fn dump_flight(path: &std::path::Path, quiet: bool) {
    match lc_telemetry::flight::dump_to(path) {
        Ok(()) => {
            if !quiet {
                eprintln!("flight recorder: dumped to {}", path.display());
            }
        }
        Err(e) => eprintln!(
            "warning: flight recorder dump to {} failed: {e}",
            path.display()
        ),
    }
}
