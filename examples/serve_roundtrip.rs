//! Serve roundtrip: boot the compression service in-process, pack and
//! unpack a buffer through a real TCP socket, inspect the archive with
//! `stat`, then drain gracefully and read the accounting summary.
//!
//! ```text
//! cargo run --release --example serve_roundtrip
//! ```

use lc_repro::lc_parallel::CancelToken;
use lc_repro::lc_serve::proto::{Op, Request, Response};
use lc_repro::lc_serve::{Client, ServeConfig, Server};

fn main() {
    // 1. Boot a server on an ephemeral port. The drain token is how the
    //    embedding process asks for a graceful shutdown; `lc serve`
    //    wires the same token to SIGINT/SIGTERM.
    let drain = CancelToken::new();
    let server = Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            mem_budget_bytes: Some(256 << 20),
            ..ServeConfig::default()
        },
        drain.clone(),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || server.run());
    println!("serving on {addr}");

    // 2. Some compressible single-precision data.
    let values: Vec<f32> = (0..250_000)
        .map(|i| 300.0 + (i as f32 * 1e-4).sin())
        .collect();
    let input: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();

    // 3. Pack it through the wire. The client retries sheds (with the
    //    server-supplied retry_after hint) and transient transport
    //    faults; structured errors come back as Response::Err.
    let client = Client::new(addr);
    let packed = match client
        .request_with_retry(
            &Request {
                op: Op::Pack,
                deadline_ms: 10_000,
                pipeline: "DBEFS_4 DIFF_4 RZE_4".to_string(),
                payload: input.clone(),
            },
            1,
        )
        .expect("pack exchange")
    {
        Response::Ok(bytes) => bytes,
        other => panic!("pack failed: {other:?}"),
    };
    println!(
        "packed {} -> {} bytes (ratio {:.2})",
        input.len(),
        packed.len(),
        input.len() as f64 / packed.len() as f64
    );

    // 4. Stat the archive without decoding it.
    match client
        .request_with_retry(
            &Request {
                op: Op::Stat,
                deadline_ms: 10_000,
                pipeline: String::new(),
                payload: packed.clone(),
            },
            2,
        )
        .expect("stat exchange")
    {
        Response::Ok(bytes) => {
            println!("stat: {}", String::from_utf8(bytes).expect("stat is utf-8"));
        }
        other => panic!("stat failed: {other:?}"),
    }

    // 5. Unpack and verify the roundtrip is bit-exact.
    let restored = match client
        .request_with_retry(
            &Request {
                op: Op::Unpack,
                deadline_ms: 10_000,
                pipeline: String::new(),
                payload: packed,
            },
            3,
        )
        .expect("unpack exchange")
    {
        Response::Ok(bytes) => bytes,
        other => panic!("unpack failed: {other:?}"),
    };
    assert_eq!(restored, input);
    println!("round-trip OK");

    // 6. Graceful drain: stop accepting, finish in-flight work, and
    //    hand back the accounting summary. The request-termination
    //    identity must hold: requests_in = ok + err + sheds + failed
    //    response writes.
    drain.cancel();
    let summary = handle.join().expect("server thread");
    assert!(summary.accounted(), "termination contract: {summary:?}");
    assert!(!summary.hard_aborted, "clean drain, no escalation");
    println!("drain summary: {}", summary.to_json().dump());
}
