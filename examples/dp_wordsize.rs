//! The data-type/word-size hypothesis, executable.
//!
//! The study's inputs are single-precision, which is why RLE_4 is the
//! variant that compresses (and therefore decodes slowly — paper
//! Fig. 11). The related work (Azami & Burtscher, ISPASS'25) observes
//! that the preferred word size of such components tracks the input's
//! data type. With the double-precision extension dataset we can run the
//! exact same experiment and watch the effect move from RLE_4 to RLE_8.
//!
//! ```text
//! cargo run --release --example dp_wordsize
//! ```

use lc_repro::lc_core::KernelStats;
use lc_repro::lc_data::{dp::generate_dp, file_by_name, generate, Scale};
use lc_repro::lc_study::runner::{run_stage, ChunkedData};

fn rle_profile(label: &str, data: &[u8]) {
    println!("{label} ({} bytes):", data.len());
    let input = ChunkedData::from_bytes(data);
    for w in [1usize, 2, 4, 8] {
        let c = lc_repro::lc_components::lookup(&format!("RLE_{w}")).unwrap();
        let out = run_stage(c.as_ref(), &input, true);
        let ratio = data.len() as f64 / out.output.total_bytes() as f64;
        println!(
            "  RLE_{w}: applied to {:3}/{:3} chunks, ratio {ratio:5.3}, decode ops {}",
            out.applied,
            out.applied + out.skipped,
            out.dec.thread_ops,
        );
    }
}

fn main() {
    let scale = Scale::denominator(2048);
    for name in ["obs_temp", "obs_error"] {
        let file = file_by_name(name).unwrap();
        rle_profile(
            &format!("{name} (single precision)"),
            &generate(file, scale),
        );
        rle_profile(
            &format!("{name} (double precision)"),
            &generate_dp(file, scale),
        );
        println!();
    }

    // Cross-check: CLOG's leading-zero exploitation also shifts — after
    // DBEFS at the matching width, the debiased exponents cluster.
    let file = file_by_name("num_control").unwrap();
    for (label, data, mutator, reducer) in [
        (
            "SP: DBEFS_4 + CLOG_4",
            generate(file, scale),
            "DBEFS_4",
            "CLOG_4",
        ),
        (
            "DP: DBEFS_8 + CLOG_8",
            generate_dp(file, scale),
            "DBEFS_8",
            "CLOG_8",
        ),
    ] {
        let input = ChunkedData::from_bytes(&data);
        let m = lc_repro::lc_components::lookup(mutator).unwrap();
        let s1 = run_stage(m.as_ref(), &input, true);
        let r = lc_repro::lc_components::lookup(reducer).unwrap();
        let mut enc = Vec::new();
        let mut total = 0u64;
        for chunk in &s1.output.chunks {
            enc.clear();
            r.encode_chunk(chunk, &mut enc, &mut KernelStats::new());
            total += enc.len().min(chunk.len()) as u64;
        }
        println!(
            "{label}: {} -> {} bytes (ratio {:.3})",
            data.len(),
            total,
            data.len() as f64 / total as f64
        );
    }
    println!("\nconclusion: matching the component word size to the data type is what");
    println!("creates (and moves) the paper's Fig. 11 asymmetry.");
}
