//! Reproduce the paper's §4 porting exercise in simulation: how does the
//! same pipeline behave on a warp-32 GPU (RTX 4090) versus the warp-64
//! MI100, and what do the warp-size-sensitive kernel statistics look like?
//!
//! The paper had to rewrite warp-level prefix sums (Listing 1) for
//! 64-thread wavefronts; our cost model charges `log2(warp)` shuffle steps
//! per scan and double divergence cost on warp-64 hardware, so the same
//! recorded statistics produce different times per GPU.
//!
//! ```text
//! cargo run --release --example warp64_port
//! ```

use gpu_sim::{
    pipeline_time, throughput_gbs, CompilerId, Direction, OptLevel, SimConfig, MI100, RTX_4090,
};
use lc_repro::lc_data::{file_by_name, generate, Scale};
use lc_repro::lc_study::runner::{run_stage, ChunkedData};

fn main() {
    let file = file_by_name("num_plasma").unwrap();
    let data = generate(file, Scale::denominator(1024));
    let paper_bytes = file.paper_size_tenth_mb as u64 * 100_000;
    let factor = paper_bytes as f64 / data.len() as f64;
    let chunks = paper_bytes.div_ceil(lc_repro::lc_core::CHUNK_SIZE as u64);

    // Pipelines with different warp-level behaviour: BIT_8 (shuffle-based
    // transpose), DIFF decode (warp-scan heavy), RLE (divergent).
    for desc in [
        "BIT_8 DIFF_8 CLOG_8",
        "TCMS_4 DIFF_4 RLE_4",
        "DBEFS_4 DIFFMS_4 RARE_4",
    ] {
        let mut chunked = ChunkedData::from_bytes(&data);
        let mut enc = Vec::new();
        let mut dec = Vec::new();
        let mut comp_bytes = 0u64;
        for name in desc.split_whitespace() {
            let c = lc_repro::lc_components::lookup(name).expect(name);
            let o = run_stage(c.as_ref(), &chunked, true);
            enc.push(o.enc.scaled(factor));
            dec.push(o.dec.scaled(factor));
            comp_bytes = (o.output.total_bytes() as f64 * factor) as u64 + 5 * chunks;
            chunked = o.output;
        }
        println!("pipeline: {desc}");
        for gpu in [&RTX_4090, &MI100] {
            let cfg = SimConfig::new(gpu, CompilerId::Hipcc, OptLevel::O3);
            let te = pipeline_time(
                &cfg,
                Direction::Encode,
                &enc,
                chunks,
                paper_bytes,
                comp_bytes,
            );
            let td = pipeline_time(
                &cfg,
                Direction::Decode,
                &dec,
                chunks,
                paper_bytes,
                comp_bytes,
            );
            println!(
                "  {:12} (warp {:2}, {:3} {}): encode {:7.1} GB/s   decode {:7.1} GB/s",
                gpu.name,
                gpu.warp_size,
                gpu.sms,
                if gpu.vendor == gpu_sim::Vendor::Amd {
                    "CUs"
                } else {
                    "SMs"
                },
                throughput_gbs(paper_bytes, te),
                throughput_gbs(paper_bytes, td),
            );
        }
        println!();
    }
    println!(
        "note: the MI100 runs {} warps per 512-thread block (vs {} on the 4090),\n\
         so warp scans take one extra shuffle level but half as many warps\n\
         participate — the §4 porting trade-off, visible above as a different\n\
         encode/decode balance rather than a uniform slowdown.",
        MI100.warps_per_block(),
        RTX_4090.warps_per_block()
    );
}
