//! Miniature reproduction of the paper's headline experiment (Figs. 2/3):
//! measure a restricted pipeline space on every (GPU, compiler) platform
//! and print the encoding/decoding letter-value distributions.
//!
//! The full campaign lives in the `reproduce` binary; this example keeps
//! the component set small so it finishes in seconds.
//!
//! ```text
//! cargo run --release --example compiler_study
//! ```

use lc_repro::lc_data::{Scale, SP_FILES};
use lc_repro::lc_study::{figures, report, run_campaign, FigId, Space, StudyConfig};

fn main() {
    let sc = StudyConfig {
        space: Space::restricted_to_families(&["TCMS", "DBEFS", "DIFF", "RLE", "RZE", "CLOG"]),
        scale: Scale::denominator(8192),
        threads: lc_repro::lc_parallel::default_threads(),
        files: vec![&SP_FILES[0], &SP_FILES[5], &SP_FILES[10]],
        opt_levels: vec![gpu_sim::OptLevel::O3],
        verify: true,
    };
    println!(
        "measuring {} pipelines on {} inputs across 11 platforms…",
        sc.space.len(),
        sc.files.len()
    );
    let m = run_campaign(&sc);

    for id in [FigId::Fig2, FigId::Fig3] {
        println!();
        print!("{}", figures::render(&figures::figure(&m, id)));
    }

    println!("\npaper-claim checklist:");
    for f in report::findings(&m) {
        println!(
            "  [{}] {}: {}",
            if f.holds { "ok" } else { "--" },
            f.id,
            f.measured
        );
    }
}
