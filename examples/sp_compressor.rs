//! Compress the (synthetic) SP dataset with a handful of classic LC
//! pipelines and report per-file compression ratios — the workload the
//! paper's introduction motivates: high-speed lossless compression of
//! single-precision scientific data.
//!
//! ```text
//! cargo run --release --example sp_compressor
//! ```

use lc_repro::lc_core::archive;
use lc_repro::lc_data::{generate, Scale, SP_FILES};
use lc_repro::lc_parallel::Pool;

fn main() {
    // Pipelines resembling the published LC compressors: float-aware
    // mutation, prediction, then a reducer.
    let candidates = [
        "DBEFS_4 DIFF_4 RZE_4",    // SPspeed-style
        "DBESF_4 DIFFMS_4 RARE_4", // SPratio-style
        "TUPL2_1 BIT_1 RLE_1",     // bit-plane route
        "TCMS_4 DIFF_4 CLOG_4",    // integer-style route
    ];
    let pool = Pool::with_default_threads();
    let scale = Scale::denominator(2048);

    println!("{:12} {:>10}  best pipeline (ratio)", "file", "bytes");
    let mut grand: Vec<(String, f64)> = candidates.iter().map(|c| (c.to_string(), 0.0)).collect();
    for file in &SP_FILES {
        let data = generate(file, scale);
        let mut best: Option<(&str, f64)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            let pipeline = lc_repro::lc_components::parse_pipeline(cand).expect("pipeline");
            let res = archive::encode_with_stats(&pipeline, &data, &pool);
            let ratio = data.len() as f64 / res.archive.len() as f64;
            grand[ci].1 += ratio.ln();
            if best.is_none() || ratio > best.unwrap().1 {
                best = Some((cand, ratio));
            }
            // Every candidate must round-trip.
            let back = archive::decode(&res.archive, lc_repro::lc_components::lookup, &pool)
                .expect("decode");
            assert_eq!(back, data, "{cand} corrupted {}", file.name);
        }
        let (name, ratio) = best.unwrap();
        println!(
            "{:12} {:>10}  {} ({:.3})",
            file.name,
            data.len(),
            name,
            ratio
        );
    }
    println!("\ngeometric-mean ratio across the dataset:");
    for (name, log_sum) in &grand {
        println!(
            "  {:26} {:.3}",
            name,
            (log_sum / SP_FILES.len() as f64).exp()
        );
    }
}
