//! Search the pipeline space for the best compression ratio on one input —
//! what the LC framework is *for* (its published compressors SPspeed,
//! SPratio, … are exactly such search results).
//!
//! Uses the same stage-tree memoization as the measurement campaign:
//! pipelines sharing a prefix share the transformed data, so the search
//! runs 62 + 62² + 62²·28 stage executions instead of 3 × 107,632.
//!
//! ```text
//! cargo run --release --example pipeline_search [-- <sp-file> [--full]]
//! ```
//!
//! Default searches a 24-component subspace of a small file; `--full`
//! searches all 107,632 pipelines.

use lc_repro::lc_data::{file_by_name, generate, Scale};
use lc_repro::lc_study::runner::{run_stage, ChunkedData};
use lc_repro::lc_study::Space;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let file_name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("obs_temp");
    let full = args.iter().any(|a| a == "--full");

    let space = if full {
        Space::full()
    } else {
        Space::restricted_to_families(&[
            "DBEFS", "TCMS", "BIT", "TUPL", "DIFF", "DIFFMS", "CLOG", "RLE", "RZE", "RARE",
        ])
    };
    let file = file_by_name(file_name).expect("known SP file (see `lc gen-data`)");
    let data = generate(file, Scale::denominator(2048));
    let input = ChunkedData::from_bytes(&data);
    println!(
        "searching {} pipelines for the best ratio on {} ({} bytes)…",
        space.len(),
        file.name,
        data.len()
    );

    let nc = space.components.len();
    let nr = space.reducers.len();
    let mut best: Option<(String, u64)> = None;
    let mut evaluated = 0usize;
    for i1 in 0..nc {
        let s1 = run_stage(space.components[i1].as_ref(), &input, false);
        for i2 in 0..nc {
            let s2 = run_stage(space.components[i2].as_ref(), &s1.output, false);
            for ir in 0..nr {
                let s3 = run_stage(space.reducers[ir].as_ref(), &s2.output, false);
                let size = s3.output.total_bytes() + 5 * input.chunk_count() as u64;
                evaluated += 1;
                if best.as_ref().is_none_or(|(_, b)| size < *b) {
                    let desc = format!(
                        "{} {} {}",
                        space.components[i1].name(),
                        space.components[i2].name(),
                        space.reducers[ir].name()
                    );
                    println!(
                        "  new best: {desc:32} {} -> {} bytes (ratio {:.3})",
                        data.len(),
                        size,
                        data.len() as f64 / size as f64
                    );
                    best = Some((desc, size));
                }
            }
        }
    }
    let (desc, size) = best.expect("non-empty space");
    println!(
        "\nevaluated {evaluated} pipelines; best: {desc} (ratio {:.3})",
        data.len() as f64 / size as f64
    );

    // Prove the winner round-trips through the real archive format.
    let pipeline = lc_repro::lc_components::parse_pipeline(&desc).unwrap();
    let pool = lc_repro::lc_parallel::Pool::with_default_threads();
    let archive = lc_repro::lc_core::archive::encode(&pipeline, &data, &pool);
    let back = lc_repro::lc_core::archive::decode(&archive, lc_repro::lc_components::lookup, &pool)
        .expect("decode");
    assert_eq!(back, data);
    println!(
        "round-trip of the winning pipeline: OK ({} bytes archived)",
        archive.len()
    );
}
