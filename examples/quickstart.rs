//! Quickstart: build a pipeline, compress a buffer, decompress it back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lc_repro::lc_core::{archive, verify};
use lc_repro::lc_parallel::Pool;

fn main() {
    // 1. Pick a pipeline — the same syntax the paper uses (Fig. 1):
    //    three data transformations, reducer last.
    let pipeline = lc_repro::lc_components::parse_pipeline("DBEFS_4 DIFF_4 RZE_4")
        .expect("valid pipeline description");

    // 2. Some single-precision data worth compressing: a smooth field.
    let values: Vec<f32> = (0..500_000)
        .map(|i| 300.0 + (i as f32 * 1e-4).sin())
        .collect();
    let input: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();

    // 3. Compress. Chunks are processed in parallel; output placement uses
    //    the same decoupled look-back scan as the GPU encoder.
    let pool = Pool::with_default_threads();
    let result = archive::encode_with_stats(&pipeline, &input, &pool);
    println!(
        "compressed {} -> {} bytes (ratio {:.2})",
        input.len(),
        result.archive.len(),
        input.len() as f64 / result.archive.len() as f64
    );
    for stage in &result.stats.stages {
        println!(
            "  {:8}: applied to {} chunks, skipped on {} (copy-on-expand)",
            stage.component, stage.chunks_applied, stage.chunks_skipped
        );
    }

    // 4. Decompress and check.
    let restored = archive::decode(&result.archive, lc_repro::lc_components::lookup, &pool)
        .expect("well-formed archive");
    assert_eq!(restored, input);
    println!("round-trip OK");

    // 5. The one-liner for tests and experiments:
    let size =
        verify::roundtrip_pipeline(&pipeline, &input, lc_repro::lc_components::lookup, &pool)
            .expect("round-trip");
    println!("verify::roundtrip_pipeline agrees: {size} bytes");
}
