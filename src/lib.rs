//! Umbrella crate for the LC reproduction workspace.
//!
//! Re-exports the public APIs of all member crates so examples and
//! integration tests can use one coherent namespace.

#![forbid(unsafe_code)]

pub use gpu_sim;
pub use lc_components;
pub use lc_core;
pub use lc_data;
pub use lc_json;
pub use lc_parallel;
pub use lc_serve;
pub use lc_study;
pub use lc_telemetry;
