//! Workspace-local, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! exactly the surface it consumes: [`rngs::StdRng`], [`SeedableRng`], and
//! [`RngExt`] with `random::<T>()` and `random_range(range)`.
//!
//! The generator is xoshiro256** (Blackman & Vigna) seeded through
//! splitmix64, so the stream for a given seed is deterministic across
//! platforms and builds — the synthetic SP dataset generators depend on
//! that for reproducible inputs.

#![forbid(unsafe_code)]

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    /// xoshiro256** — 256 bits of state, 64-bit output.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Next raw 64-bit output word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 state expansion, as recommended by the xoshiro
            // authors: guarantees a non-zero state for every seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Types samplable uniformly over their full domain (`[0, 1)` for floats).
pub trait Random: Sized {
    /// Draw one uniform value.
    fn random(rng: &mut rngs::StdRng) -> Self;
}

impl Random for u64 {
    fn random(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for f64 {
    fn random(rng: &mut rngs::StdRng) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`RngExt::random_range`]. Parameterized over the
/// output type (rather than an associated type) so `let x: f32 =
/// rng.random_range(1.0..2.0)` infers the literal's type from the target.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t as Random>::random(rng)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// The sampling methods the workspace calls on `StdRng`.
pub trait RngExt {
    /// Uniform value over the full domain of `T`.
    fn random<T: Random>(&mut self) -> T;
    /// Uniform value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for rngs::StdRng {
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be uncorrelated, {same}/64 equal");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(8..128usize);
            assert!((8..128).contains(&v));
            let f = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f32 = rng.random_range(1.0e-2..1.0e3f32);
            assert!((1.0e-2..1.0e3).contains(&g));
        }
    }

    #[test]
    fn range_values_cover_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0..10u32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 buckets hit: {seen:?}");
    }
}
