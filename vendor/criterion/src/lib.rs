//! Workspace-local, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the benchmarking surface the `bench` crate uses: `criterion_group!` /
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! groups with `throughput` / `sample_size` / `bench_with_input` /
//! `finish`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Measurement is deliberately simple: each benchmark is calibrated to a
//! fixed target time, then timed in one batch, and the per-iteration
//! wall-clock mean is printed together with derived throughput. There is
//! no statistical machinery — the harness exists so `cargo bench` runs
//! and `--all-targets` builds stay green, not to replace criterion's
//! analysis.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work one iteration processes, for derived throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name provides the context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` for the calibrated iteration count, timing the batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Wall-clock time the calibrated measurement batch aims for.
const TARGET: Duration = Duration::from_millis(200);

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibration pass: one iteration, to size the measurement batch.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!("  {:>10.3} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64),
        Throughput::Elements(n) => format!("  {:>10.3} Melem/s", n as f64 / ns * 1e9 / 1e6),
    });
    println!(
        "{name:<48} {ns:>14.1} ns/iter ({iters} iters){}",
        rate.unwrap_or_default()
    );
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work, enabling derived throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; this harness always takes one batch.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark `f` with `input`, labelled `id` within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_bench(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmark `f`, labelled `id` within the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_bench(&label, self.throughput, &mut f);
        self
    }

    /// End the group (output is already printed; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, None, &mut f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u64;
        Criterion::default().bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(4096)).sample_size(10);
        let data = vec![1u8; 4096];
        let mut total = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter("sum"), &data, |b, d| {
            b.iter(|| total += d.iter().map(|&x| x as usize).sum::<usize>())
        });
        g.finish();
        assert!(total > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("DIFF_4").id, "DIFF_4");
    }
}
