//! Workspace-local, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the exact property-testing surface the workspace's integration tests
//! use: the [`proptest!`] macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `any::<T>()`,
//! integer-range and `collection::vec` strategies, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! generated inputs via the assertion message and panics. Generation is
//! deterministic per test (seeded from the test's module path + name), so
//! failures reproduce exactly across runs.

#![forbid(unsafe_code)]

/// Test-runner configuration and error plumbing.
pub mod test_runner {
    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
        rejection: bool,
    }

    impl TestCaseError {
        /// A genuine assertion failure: the property does not hold.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self {
                msg: msg.into(),
                rejection: false,
            }
        }

        /// A rejected case (`prop_assume!`): skip, don't fail.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self {
                msg: msg.into(),
                rejection: true,
            }
        }

        /// True for `prop_assume!` rejections.
        pub fn is_rejection(&self) -> bool {
            self.rejection
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic per-test generator (splitmix64 over an FNV-1a hash
    /// of the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// Seed from the (module-qualified) test name.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { x: h | 1 }
        }

        /// Next raw 64-bit output word.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The strategy abstraction: a recipe for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Uniform strategy over all values of `T`.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange(core::ops::Range<usize>);

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Vectors of `element`-generated values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let r = &self.len.0;
            assert!(r.start < r.end, "empty length range");
            let span = (r.end - r.start) as u64;
            let n = r.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declare property tests. Accepts an optional leading
/// `#![proptest_config(...)]` followed by `#[test] fn name(arg in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cfg.cases {
                $(let $arg = ($strat).generate(&mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let _ = $body;
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(e) if e.is_rejection() => {}
                    ::std::result::Result::Err(e) => panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        e
                    ),
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`: {}\n  left: {l:?}\n right: {r:?}",
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: {l:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`: {}\n  both: {l:?}",
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Skip the current case (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_vecs_respect_length(v in crate::collection::vec(any::<u8>(), 3..17)) {
            prop_assert!(v.len() >= 3 && v.len() < 17, "len {}", v.len());
        }

        #[test]
        fn range_strategy_in_bounds(x in 10u64..20, y in 1usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = crate::test_runner::TestRng::for_test("alpha");
        let mut b = crate::test_runner::TestRng::for_test("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("beta");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
