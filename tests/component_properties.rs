//! Property-based tests: every one of the 62 components must be an exact
//! bijection on arbitrary chunk contents, respect its size contract, and
//! report self-consistent metadata.

use proptest::prelude::*;

use lc_repro::lc_components::{all, lookup};
use lc_repro::lc_core::{ComponentKind, KernelStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-trip every component on arbitrary bytes of arbitrary length
    /// (including lengths that are not multiples of the word size).
    #[test]
    fn all_components_roundtrip_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        for c in all() {
            let mut enc = Vec::new();
            c.encode_chunk(&data, &mut enc, &mut KernelStats::new());
            let mut dec = Vec::new();
            c.decode_chunk(&enc, &mut dec, &mut KernelStats::new())
                .unwrap_or_else(|e| panic!("{}: {e}", c.name()));
            prop_assert_eq!(&dec, &data, "{} mangled data", c.name());
        }
    }

    /// Non-reducers must preserve the chunk size exactly.
    #[test]
    fn non_reducers_preserve_size(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        for c in all().iter().filter(|c| c.kind() != ComponentKind::Reducer) {
            let mut enc = Vec::new();
            c.encode_chunk(&data, &mut enc, &mut KernelStats::new());
            prop_assert_eq!(enc.len(), data.len(), "{} changed size", c.name());
        }
    }

    /// Decoders must never panic on malformed input — errors only.
    #[test]
    fn decoders_survive_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        for c in all() {
            let mut out = Vec::new();
            let _ = c.decode_chunk(&garbage, &mut out, &mut KernelStats::new());
        }
    }

    /// Composition: two random components chained still round-trip
    /// (stage-2 input is stage-1 output, whatever its alignment).
    #[test]
    fn random_two_stage_composition_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        i in 0usize..62,
        j in 0usize..62,
    ) {
        let a = &all()[i];
        let b = &all()[j];
        let mut s1 = Vec::new();
        a.encode_chunk(&data, &mut s1, &mut KernelStats::new());
        let mut s2 = Vec::new();
        b.encode_chunk(&s1, &mut s2, &mut KernelStats::new());
        let mut r1 = Vec::new();
        b.decode_chunk(&s2, &mut r1, &mut KernelStats::new()).unwrap();
        prop_assert_eq!(&r1, &s1);
        let mut r0 = Vec::new();
        a.decode_chunk(&r1, &mut r0, &mut KernelStats::new()).unwrap();
        prop_assert_eq!(&r0, &data, "{} after {}", a.name(), b.name());
    }

    /// Encode is deterministic: same input, same output, same stats.
    #[test]
    fn encode_is_deterministic(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        i in 0usize..62,
    ) {
        let c = &all()[i];
        let (mut e1, mut e2) = (Vec::new(), Vec::new());
        let (mut s1, mut s2) = (KernelStats::new(), KernelStats::new());
        c.encode_chunk(&data, &mut e1, &mut s1);
        c.encode_chunk(&data, &mut e2, &mut s2);
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(s1, s2);
    }
}

#[test]
fn metadata_is_self_consistent() {
    for c in all() {
        let name = c.name();
        assert!(
            name.ends_with(&format!("_{}", c.word_size())),
            "{name}: word-size suffix mismatch"
        );
        assert!([1, 2, 4, 8].contains(&c.word_size()), "{name}");
        if let Some(k) = c.tuple_size() {
            assert!(name.starts_with(&format!("TUPL{k}")), "{name}");
        }
        assert_eq!(lookup(name).unwrap().kind(), c.kind());
    }
}

#[test]
fn stats_are_monotone_in_input_size() {
    // Bigger inputs never report less work.
    for c in all() {
        let small: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        let large: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
        let mut ss = KernelStats::new();
        let mut sl = KernelStats::new();
        c.encode_chunk(&small, &mut Vec::new(), &mut ss);
        c.encode_chunk(&large, &mut Vec::new(), &mut sl);
        assert!(sl.words >= ss.words, "{}", c.name());
        assert!(sl.thread_ops >= ss.thread_ops, "{}", c.name());
        assert!(sl.global_reads >= ss.global_reads, "{}", c.name());
    }
}
