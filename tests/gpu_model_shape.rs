//! Cross-crate shape invariants of the GPU/compiler model when driven by
//! *real* component statistics (not synthetic ones): the relative effects
//! the paper reports must emerge from measured kernels.

use gpu_sim::{
    pipeline_time, throughput_gbs, CompilerId, Direction, OptLevel, SimConfig, ALL_GPUS, MI100,
    RTX_4090,
};
use lc_repro::lc_data::{file_by_name, generate, Scale};
use lc_repro::lc_study::runner::{run_stage, ChunkedData};

/// Run a pipeline's stage tree on a synthetic file and return
/// (enc stats, dec stats, chunks, uncompressed, compressed) extrapolated
/// to paper scale.
fn measure(
    desc: &str,
    file: &str,
) -> (
    Vec<lc_repro::lc_core::KernelStats>,
    Vec<lc_repro::lc_core::KernelStats>,
    u64,
    u64,
    u64,
) {
    let sp = file_by_name(file).unwrap();
    let data = generate(sp, Scale::tiny());
    let paper_bytes = sp.paper_size_tenth_mb as u64 * 100_000;
    let factor = paper_bytes as f64 / data.len() as f64;
    let chunks = paper_bytes.div_ceil(16384);
    let mut chunked = ChunkedData::from_bytes(&data);
    let mut enc = Vec::new();
    let mut dec = Vec::new();
    let mut comp = 0u64;
    for name in desc.split_whitespace() {
        let c = lc_repro::lc_components::lookup(name).expect(name);
        let o = run_stage(c.as_ref(), &chunked, true);
        enc.push(o.enc.scaled(factor));
        dec.push(o.dec.scaled(factor));
        comp = (o.output.total_bytes() as f64 * factor) as u64 + 5 * chunks;
        chunked = o.output;
    }
    (enc, dec, chunks, paper_bytes, comp)
}

fn enc_tp(
    cfg: &SimConfig,
    m: &(
        Vec<lc_repro::lc_core::KernelStats>,
        Vec<lc_repro::lc_core::KernelStats>,
        u64,
        u64,
        u64,
    ),
) -> f64 {
    throughput_gbs(
        m.3,
        pipeline_time(cfg, Direction::Encode, &m.0, m.2, m.3, m.4),
    )
}

fn dec_tp(
    cfg: &SimConfig,
    m: &(
        Vec<lc_repro::lc_core::KernelStats>,
        Vec<lc_repro::lc_core::KernelStats>,
        u64,
        u64,
        u64,
    ),
) -> f64 {
    throughput_gbs(
        m.3,
        pipeline_time(cfg, Direction::Decode, &m.1, m.2, m.3, m.4),
    )
}

#[test]
fn per_pipeline_compiler_ordering_on_real_kernels() {
    // §6.1 on several concrete pipelines and inputs.
    for (desc, file) in [
        ("DBEFS_4 DIFF_4 RZE_4", "num_brain"),
        ("TCMS_2 BIT_2 CLOG_2", "obs_temp"),
        ("RARE_4 DIFFMS_4 RRE_4", "msg_bt"),
    ] {
        let m = measure(desc, file);
        let nvcc = SimConfig::new(&RTX_4090, CompilerId::Nvcc, OptLevel::O3);
        let clang = SimConfig::new(&RTX_4090, CompilerId::Clang, OptLevel::O3);
        let hipcc = SimConfig::new(&RTX_4090, CompilerId::Hipcc, OptLevel::O3);
        assert!(
            enc_tp(&clang, &m) < enc_tp(&nvcc, &m),
            "{desc} on {file}: Clang encode"
        );
        assert!(
            dec_tp(&clang, &m) > dec_tp(&nvcc, &m),
            "{desc} on {file}: Clang decode"
        );
        let ratio = enc_tp(&hipcc, &m) / enc_tp(&nvcc, &m);
        assert!(
            (ratio - 1.0).abs() < 0.02,
            "{desc} on {file}: NVCC/HIPCC {ratio}"
        );
    }
}

#[test]
fn staircase_holds_on_real_kernels() {
    let m = measure("TCMS_4 DIFF_4 CLOG_4", "obs_error");
    let mut last = 0.0;
    for gpu in ["TITAN V", "RTX 3080 Ti", "RTX 4090"] {
        let spec = ALL_GPUS.iter().find(|g| g.name == gpu).unwrap();
        let cfg = SimConfig::new(spec, CompilerId::Nvcc, OptLevel::O3);
        let tp = enc_tp(&cfg, &m);
        assert!(tp > last, "{gpu}: {tp} <= {last}");
        last = tp;
    }
}

#[test]
fn throughputs_land_in_the_papers_order_of_magnitude() {
    // The paper's figures span roughly 10–700 GB/s; our simulated values
    // must land in the same order of magnitude on comparable hardware.
    let m = measure("DBEFS_4 DIFF_4 RZE_4", "num_control");
    let cfg = SimConfig::new(&RTX_4090, CompilerId::Nvcc, OptLevel::O3);
    let e = enc_tp(&cfg, &m);
    let d = dec_tp(&cfg, &m);
    assert!(e > 10.0 && e < 1500.0, "encode {e} GB/s");
    assert!(d > 10.0 && d < 1500.0, "decode {d} GB/s");
    assert!(d > e, "decode should beat encode for this pipeline");
}

#[test]
fn mi100_uses_warp64_accounting() {
    // The MI100 result must reflect its 64-thread wavefronts: hold every
    // other spec constant and flip only the warp size — divergent kernels
    // (RLE-heavy) must pay more on the warp-64 machine (§4's porting
    // trade-off as the cost model sees it).
    let divergent = measure("RLE_4 RLE_4 RLE_4", "obs_temp");
    let mi_w32: &'static gpu_sim::GpuSpec = Box::leak(Box::new(gpu_sim::GpuSpec {
        warp_size: 32,
        ..MI100.clone()
    }));
    let w64 = SimConfig::new(&MI100, CompilerId::Hipcc, OptLevel::O3);
    let w32 = SimConfig::new(mi_w32, CompilerId::Hipcc, OptLevel::O3);
    let t64 = pipeline_time(
        &w64,
        Direction::Encode,
        &divergent.0,
        divergent.2,
        divergent.3,
        divergent.4,
    );
    let t32 = pipeline_time(
        &w32,
        Direction::Encode,
        &divergent.0,
        divergent.2,
        divergent.3,
        divergent.4,
    );
    assert!(t64 > t32, "warp-64 divergence penalty: {t64} vs {t32}");
}

#[test]
fn compression_reduces_decode_memory_traffic() {
    // A pipeline that compresses well moves fewer DRAM bytes than one that
    // doesn't — and the model must therefore decode it faster than an
    // identical-cost pipeline with incompressible output.
    let good = measure("DBESF_4 DIFFMS_4 RARE_4", "obs_temp");
    assert!(
        good.4 < good.3,
        "pipeline compresses: {} < {}",
        good.4,
        good.3
    );
    let cfg = SimConfig::new(&RTX_4090, CompilerId::Nvcc, OptLevel::O3);
    let t_small = pipeline_time(&cfg, Direction::Decode, &good.1, good.2, good.3, good.4);
    let t_big = pipeline_time(&cfg, Direction::Decode, &good.1, good.2, good.3, good.3);
    assert!(t_small <= t_big, "less DRAM traffic cannot be slower");
}

#[test]
fn opt_level_effects_match_section_6_5_on_real_kernels() {
    let m = measure("BIT_4 DIFF_4 RZE_4", "msg_sweep3d");
    let o1 = SimConfig::new(&RTX_4090, CompilerId::Clang, OptLevel::O1);
    let o3 = SimConfig::new(&RTX_4090, CompilerId::Clang, OptLevel::O3);
    let enc_speedup = enc_tp(&o3, &m) / enc_tp(&o1, &m);
    let dec_speedup = dec_tp(&o3, &m) / dec_tp(&o1, &m);
    assert!(
        enc_speedup < 1.0,
        "Clang -O3 encode regression: {enc_speedup}"
    );
    assert!(
        dec_speedup > 1.0 && dec_speedup < 1.10,
        "Clang -O3 decode gain: {dec_speedup}"
    );
    // NVCC barely moves.
    let n1 = SimConfig::new(&RTX_4090, CompilerId::Nvcc, OptLevel::O1);
    let n3 = SimConfig::new(&RTX_4090, CompilerId::Nvcc, OptLevel::O3);
    let nvcc_speedup = enc_tp(&n3, &m) / enc_tp(&n1, &m);
    assert!(
        (nvcc_speedup - 1.0).abs() < 0.06,
        "NVCC speedup {nvcc_speedup}"
    );
}
