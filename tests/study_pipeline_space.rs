//! Cross-crate checks of the study harness: the pipeline space matches
//! every count the paper states, and a quick campaign respects the
//! measurement protocol and the cost model's basic monotonicities.

use gpu_sim::{CompilerId, Direction, OptLevel};
use lc_repro::lc_data::{Scale, SP_FILES};
use lc_repro::lc_study::{figures, run_campaign, FigId, Space, StudyConfig};

#[test]
fn paper_section5_pipeline_counts() {
    let s = Space::full();
    assert_eq!(s.components.len(), 62);
    assert_eq!(s.reducers.len(), 28);
    assert_eq!(s.len(), 62 * 62 * 28);
    assert_eq!(s.len(), 107_632);
}

#[test]
fn paper_figure_subset_counts() {
    let s = Space::full();
    // §6.2
    assert_eq!(s.uniform_word_size(1).len(), 1792);
    assert_eq!(s.uniform_word_size(2).len(), 1575);
    assert_eq!(s.uniform_word_size(4).len(), 1792);
    assert_eq!(s.uniform_word_size(8).len(), 1575);
    // §6.3
    assert_eq!(
        s.kind_pair(lc_repro::lc_core::ComponentKind::Mutator).len(),
        4032
    );
    assert_eq!(
        s.kind_pair(lc_repro::lc_core::ComponentKind::Shuffler)
            .len(),
        2800
    );
    assert_eq!(
        s.kind_pair(lc_repro::lc_core::ComponentKind::Predictor)
            .len(),
        4032
    );
    assert_eq!(
        s.kind_pair(lc_repro::lc_core::ComponentKind::Reducer).len(),
        21_952
    );
    // §6.4 stage 1
    assert_eq!(s.stage1_family("BIT").len(), 6944);
    assert_eq!(s.stage1_family("DBEFS").len(), 3472);
    assert_eq!(s.stage1_family("TUPL").len(), 10_416);
    // §6.4 stage 3
    assert_eq!(s.stage3_family("RLE").len(), 15_376);
}

fn tiny_campaign() -> lc_repro::lc_study::Measurements {
    run_campaign(&StudyConfig {
        space: Space::restricted_to_families(&["TCMS", "DIFF", "RZE"]),
        scale: Scale::tiny(),
        threads: 4,
        files: vec![&SP_FILES[5], &SP_FILES[12]],
        opt_levels: vec![OptLevel::O1, OptLevel::O3],
        verify: true,
    })
}

#[test]
fn campaign_protocol_and_monotonicity() {
    let m = tiny_campaign();
    // 11 platforms per opt level.
    assert_eq!(m.configs.len(), 22);
    // Every throughput is positive and finite.
    for c in 0..m.configs.len() {
        for dir in [Direction::Encode, Direction::Decode] {
            for &v in m.series(c, dir) {
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }
    // Determinism: a second identical run gives identical numbers.
    let m2 = tiny_campaign();
    let a = m.series(0, Direction::Encode);
    let b = m2.series(0, Direction::Encode);
    assert_eq!(a, b, "campaign must be deterministic");
}

#[test]
fn per_pipeline_compiler_consistency() {
    // The paper's headline claims hold per-pipeline (not just in the
    // median): Clang encodes slower and decodes faster than NVCC for the
    // overwhelming majority of pipelines.
    let m = tiny_campaign();
    let nv = m
        .config_index("RTX 4090", CompilerId::Nvcc, OptLevel::O3)
        .unwrap();
    let cl = m
        .config_index("RTX 4090", CompilerId::Clang, OptLevel::O3)
        .unwrap();
    let n = m.space.len();
    let mut enc_slower = 0;
    let mut dec_faster = 0;
    for p in 0..n {
        if m.throughput(cl, p, Direction::Encode) < m.throughput(nv, p, Direction::Encode) {
            enc_slower += 1;
        }
        if m.throughput(cl, p, Direction::Decode) > m.throughput(nv, p, Direction::Decode) {
            dec_faster += 1;
        }
    }
    assert!(
        enc_slower * 10 >= n * 9,
        "Clang encode slower on {enc_slower}/{n}"
    );
    assert!(
        dec_faster * 10 >= n * 9,
        "Clang decode faster on {dec_faster}/{n}"
    );
}

#[test]
fn figures_render_and_serialize() {
    let m = tiny_campaign();
    for id in [FigId::Fig2, FigId::Fig3, FigId::Fig6, FigId::Fig14] {
        let f = figures::figure(&m, id);
        assert!(!f.groups.is_empty(), "{id:?}");
        let text = figures::render(&f);
        assert!(text.starts_with(&format!("Figure {}", id.number())));
        let csv = figures::to_csv(&f);
        assert_eq!(csv.lines().count(), f.groups.len() + 1);
        // CSV must be parseable: same number of fields on every line.
        let fields = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), fields, "{line}");
        }
    }
}

#[test]
fn speedup_figures_require_both_opt_levels() {
    // Campaign with O3 only: figs 14/15 have no groups rather than panic.
    let m = run_campaign(&StudyConfig {
        space: Space::restricted_to_families(&["TCMS", "RZE"]),
        scale: Scale::tiny(),
        threads: 2,
        files: vec![&SP_FILES[12]],
        opt_levels: vec![OptLevel::O3],
        verify: false,
    });
    let f = figures::figure(&m, FigId::Fig14);
    assert!(f.groups.is_empty());
}
