//! Property tests for the value codecs at every word width: zigzag
//! (TCMS), negabinary (TCNB), and the IEEE-754 field surgeries (DBEFS,
//! DBESF) must be exact bijections on their word domains — checked
//! through the public component interface so the per-word loops are
//! covered too.

use proptest::prelude::*;

use lc_repro::lc_components::lookup;
use lc_repro::lc_core::KernelStats;

fn roundtrip_words(component: &str, words: &[u64], width: usize) {
    let c = lookup(component).expect(component);
    let data: Vec<u8> = words
        .iter()
        .flat_map(|w| w.to_le_bytes()[..width].to_vec())
        .collect();
    let mut enc = Vec::new();
    c.encode_chunk(&data, &mut enc, &mut KernelStats::new());
    assert_eq!(enc.len(), data.len(), "{component} must be size-preserving");
    let mut dec = Vec::new();
    c.decode_chunk(&enc, &mut dec, &mut KernelStats::new())
        .unwrap();
    assert_eq!(dec, data, "{component}");
}

/// Encoding must also be *injective*: distinct inputs map to distinct
/// outputs (otherwise decode could not be total).
fn encode_words(component: &str, words: &[u64], width: usize) -> Vec<u8> {
    let c = lookup(component).expect(component);
    let data: Vec<u8> = words
        .iter()
        .flat_map(|w| w.to_le_bytes()[..width].to_vec())
        .collect();
    let mut enc = Vec::new();
    c.encode_chunk(&data, &mut enc, &mut KernelStats::new());
    enc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tcms_tcnb_bijective_all_widths(words in proptest::collection::vec(any::<u64>(), 1..256)) {
        for (name, width) in [
            ("TCMS_1", 1), ("TCMS_2", 2), ("TCMS_4", 4), ("TCMS_8", 8),
            ("TCNB_1", 1), ("TCNB_2", 2), ("TCNB_4", 4), ("TCNB_8", 8),
        ] {
            roundtrip_words(name, &words, width);
        }
    }

    #[test]
    fn dbefs_dbesf_bijective(words in proptest::collection::vec(any::<u64>(), 1..256)) {
        for (name, width) in [("DBEFS_4", 4), ("DBESF_4", 4), ("DBEFS_8", 8), ("DBESF_8", 8)] {
            roundtrip_words(name, &words, width);
        }
    }

    #[test]
    fn distinct_words_encode_distinctly(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        for (name, width) in [("TCMS_8", 8), ("TCNB_8", 8), ("DBEFS_8", 8), ("DBESF_8", 8)] {
            let ea = encode_words(name, &[a], width);
            let eb = encode_words(name, &[b], width);
            prop_assert_ne!(&ea, &eb, "{} collided on {:#x} vs {:#x}", name, a, b);
        }
        // Narrow widths: compare within the width's domain.
        let (a4, b4) = (a & 0xFFFF_FFFF, b & 0xFFFF_FFFF);
        if a4 != b4 {
            for name in ["TCMS_4", "TCNB_4", "DBEFS_4", "DBESF_4"] {
                let ea = encode_words(name, &[a4], 4);
                let eb = encode_words(name, &[b4], 4);
                prop_assert_ne!(&ea, &eb, "{} collided", name);
            }
        }
    }

    #[test]
    fn predictors_are_bijective_on_word_streams(
        words in proptest::collection::vec(any::<u64>(), 1..256),
    ) {
        for (name, width) in [
            ("DIFF_1", 1), ("DIFF_8", 8),
            ("DIFFMS_2", 2), ("DIFFMS_4", 4),
            ("DIFFNB_4", 4), ("DIFFNB_8", 8),
        ] {
            roundtrip_words(name, &words, width);
        }
    }
}

#[test]
fn exhaustive_u16_zigzag_negabinary() {
    // Every 2-byte word value round-trips (65536 cases, both codecs).
    let words: Vec<u64> = (0..=u16::MAX).map(u64::from).collect();
    roundtrip_words("TCMS_2", &words, 2);
    roundtrip_words("TCNB_2", &words, 2);
    // Bijectivity over the full domain: encoded words must be a permutation.
    for name in ["TCMS_2", "TCNB_2"] {
        let enc = encode_words(name, &words, 2);
        let mut seen = vec![false; 1 << 16];
        for pair in enc.chunks_exact(2) {
            let v = u16::from_le_bytes([pair[0], pair[1]]) as usize;
            assert!(!seen[v], "{name}: value {v:#x} produced twice");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{name}: not surjective");
    }
}
