//! Adversarial floating-point inputs: every component and several full
//! pipelines must round-trip data containing NaNs (including payloads),
//! infinities, denormals, negative zero, and sentinel patterns — the
//! hostile end of what real scientific files contain.

use lc_repro::lc_components::{all, lookup, parse_pipeline};
use lc_repro::lc_core::{archive, KernelStats, CHUNK_SIZE};
use lc_repro::lc_parallel::Pool;

fn f32_stream(vals: &[f32]) -> Vec<u8> {
    vals.iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

fn adversarial_f32() -> Vec<u8> {
    let mut vals: Vec<f32> = Vec::new();
    // Block of specials, repeated to cross chunk boundaries.
    let specials = [
        f32::NAN,
        -f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        f32::MIN_POSITIVE,           // smallest normal
        f32::MIN_POSITIVE / 2.0,     // denormal
        f32::from_bits(1),           // smallest denormal
        f32::from_bits(0x7F80_0001), // signaling-ish NaN with payload
        f32::from_bits(0xFF80_FFFF), // negative NaN with payload
        f32::MAX,
        f32::MIN,
        -9999.0, // the obs sentinel
        1.0,
        -1.0,
    ];
    for i in 0..(CHUNK_SIZE / 4 + 997) {
        vals.push(specials[i % specials.len()]);
    }
    f32_stream(&vals)
}

fn adversarial_f64() -> Vec<u8> {
    let specials = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        5e-324, // smallest denormal
        f64::MAX,
        f64::from_bits(0x7FF0_0000_0000_0001), // NaN payload
        -1.5,
    ];
    let vals: Vec<f64> = (0..CHUNK_SIZE / 8 + 333)
        .map(|i| specials[i % specials.len()])
        .collect();
    vals.iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect()
}

#[test]
fn every_component_roundtrips_adversarial_f32() {
    let data = adversarial_f32();
    for c in all() {
        let mut enc = Vec::new();
        c.encode_chunk(&data[..CHUNK_SIZE], &mut enc, &mut KernelStats::new());
        let mut dec = Vec::new();
        c.decode_chunk(&enc, &mut dec, &mut KernelStats::new())
            .unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        assert_eq!(
            dec,
            &data[..CHUNK_SIZE],
            "{} corrupted NaN payloads",
            c.name()
        );
    }
}

#[test]
fn every_component_roundtrips_adversarial_f64() {
    let data = adversarial_f64();
    for c in all() {
        let mut enc = Vec::new();
        c.encode_chunk(&data[..CHUNK_SIZE], &mut enc, &mut KernelStats::new());
        let mut dec = Vec::new();
        c.decode_chunk(&enc, &mut dec, &mut KernelStats::new())
            .unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        assert_eq!(dec, &data[..CHUNK_SIZE], "{}", c.name());
    }
}

#[test]
fn float_pipelines_preserve_nan_payloads_bit_exactly() {
    let data = adversarial_f32();
    let pool = Pool::new(4);
    for desc in [
        "DBEFS_4 DIFF_4 RZE_4",
        "DBESF_4 DIFFMS_4 RARE_4",
        "DBEFS_8 DIFFNB_8 HCLOG_8",
        "BIT_4 TCNB_4 RRE_4",
    ] {
        let p = parse_pipeline(desc).unwrap();
        let enc = archive::encode(&p, &data, &pool);
        let dec = archive::decode(&enc, lookup, &pool).unwrap();
        assert_eq!(dec, data, "{desc}: lossless means bit-exact, even for NaNs");
    }
}

#[test]
fn all_zero_and_all_ones_floats() {
    let zero = vec![0u8; CHUNK_SIZE * 2 + 100];
    let ones = vec![0xFFu8; CHUNK_SIZE * 2 + 100];
    let pool = Pool::new(2);
    for data in [&zero, &ones] {
        for desc in ["DBEFS_4 DIFF_4 RZE_4", "TCMS_8 BIT_8 RLE_8"] {
            let p = parse_pipeline(desc).unwrap();
            let enc = archive::encode(&p, data, &pool);
            let dec = archive::decode(&enc, lookup, &pool).unwrap();
            assert_eq!(&dec, data, "{desc}");
        }
    }
    // All-zero must compress dramatically.
    let p = parse_pipeline("TCMS_4 DIFF_4 RZE_4").unwrap();
    let enc = archive::encode(&p, &zero, &pool);
    assert!(
        enc.len() < zero.len() / 20,
        "all-zero: {} of {}",
        enc.len(),
        zero.len()
    );
}

#[test]
fn exponent_extremes_survive_dbefs_field_surgery() {
    // Values whose exponent fields are 0 (denormals) and 255 (inf/NaN):
    // de-biasing wraps; re-biasing must wrap back exactly.
    let mut vals = Vec::new();
    for e in [0u32, 1, 2, 126, 127, 128, 254, 255] {
        for f in [0u32, 1, 0x7F_FFFF] {
            for s in [0u32, 1] {
                vals.push(f32::from_bits((s << 31) | (e << 23) | f));
            }
        }
    }
    let data = f32_stream(&vals);
    for name in ["DBEFS_4", "DBESF_4"] {
        let c = lookup(name).unwrap();
        let mut enc = Vec::new();
        c.encode_chunk(&data, &mut enc, &mut KernelStats::new());
        let mut dec = Vec::new();
        c.decode_chunk(&enc, &mut dec, &mut KernelStats::new())
            .unwrap();
        assert_eq!(dec, data, "{name}");
    }
}
