//! End-to-end observability: request-path tracing, the flight-recorder
//! black box, the `debug` protocol op, and the rate-sweep knee finder.
//!
//! These are the PR's acceptance criteria exercised against a live
//! in-process server:
//!
//! * one `req_id` links a request's queue wait, its stage/pool spans,
//!   and its outcome in a single trace export;
//! * a hard abort (drain escalation) leaves a parseable flight-recorder
//!   dump whose tail notes restate the drain summary's accounting;
//! * the `debug` op returns the same black box over the wire;
//! * `rate_sweep` steps offered load and records a knee.
//!
//! Telemetry state is process-global, so every test takes one mutex.

use std::sync::Mutex;
use std::time::Duration;

use lc_repro::lc_json::Value;
use lc_repro::lc_parallel::CancelToken;
use lc_repro::lc_serve::loadgen::{self, LoadgenConfig, RateSweepConfig};
use lc_repro::lc_serve::proto::{ErrorKind, Op, Request, Response};
use lc_repro::lc_serve::server::{ServeConfig, Server};
use lc_repro::lc_serve::Client;
use lc_repro::lc_telemetry::{self, ArgValue, Event};

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn boot(cfg: ServeConfig) -> (Server, CancelToken) {
    let drain = CancelToken::new();
    let server = Server::bind(cfg, drain.clone()).expect("bind");
    (server, drain)
}

fn arg_u64(e: &Event, key: &str) -> Option<u64> {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::U64(x) => Some(*x),
            _ => None,
        })
}

fn arg_str<'a>(e: &'a Event, key: &str) -> Option<&'a str> {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            ArgValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

/// One `req_id` must tie together the request span (queue wait +
/// outcome) and every stage/pool span the request caused — including
/// across the pool's worker threads, and with chaos stalls slowing the
/// wire down.
#[test]
fn one_req_id_links_queue_wait_stage_spans_and_outcome() {
    let _g = locked();
    lc_telemetry::reset();
    lc_telemetry::enable();

    let (server, drain) = boot(ServeConfig {
        worker_threads: 2,
        pool_threads: 2,
        chaos_seed: Some(11),
        ..ServeConfig::default()
    });
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let client = Client::new(addr);
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i / 16) as u8).collect();
    let mut any_ok = false;
    for i in 0..4u64 {
        let resp = client.request_with_retry(
            &Request {
                op: Op::Pack,
                deadline_ms: 10_000,
                pipeline: "DIFF_4 RZE_4".to_string(),
                payload: payload.clone(),
            },
            900 + i,
        );
        any_ok |= matches!(resp, Ok(Response::Ok(_)));
    }
    assert!(any_ok, "at least one exchange survives the chaos plan");

    drain.cancel();
    let summary = handle.join().expect("server thread");
    let events = lc_telemetry::drain();
    lc_telemetry::disable();
    assert!(summary.accounted(), "{summary:?}");

    // Pick a request span that terminated ok and reconstruct its trace.
    let req_span = events
        .iter()
        .filter(|e| e.cat == "serve" && e.name == "request")
        .find(|e| arg_str(e, "outcome") == Some("ok"))
        .expect("an ok request span exists");
    let req_id = arg_u64(req_span, "req").expect("request span carries its req id");
    assert!(req_id > 0);
    assert_eq!(arg_str(req_span, "op"), Some("pack"));
    assert!(
        arg_u64(req_span, "queue_us").is_some(),
        "queue wait is on the request span: {:?}",
        req_span.args
    );

    let linked: Vec<&Event> = events
        .iter()
        .filter(|e| !(e.cat == "serve" && e.name == "request"))
        .filter(|e| arg_u64(e, "req") == Some(req_id))
        .collect();
    assert!(
        linked
            .iter()
            .any(|e| e.cat == "serve" && e.name == "execute"),
        "execute span linked by req {req_id}"
    );
    assert!(
        linked.iter().any(|e| e.name == "archive.encode"),
        "archive stage span linked by req {req_id}: {:?}",
        linked.iter().map(|e| (e.cat, e.name)).collect::<Vec<_>>()
    );
    assert!(
        linked.iter().any(|e| e.cat == "pool"),
        "pool span linked by req {req_id}"
    );
}

/// Split a flight dump into its meta line and parsed records.
fn parse_dump(text: &str) -> (Value, Vec<Value>) {
    let mut lines = text.lines();
    let meta = Value::parse(lines.next().expect("meta line")).expect("meta parses");
    assert_eq!(
        meta.get("flight").and_then(Value::as_str),
        Some("lc-flight/v1"),
        "recognizable black-box header"
    );
    let records = lines
        .map(|l| Value::parse(l).expect("every record line parses"))
        .collect();
    (meta, records)
}

/// Drain escalation must publish the black box, and its tail summary
/// notes must restate exactly the accounting the drain summary reports.
#[test]
fn hard_abort_publishes_flight_dump_matching_summary() {
    let _g = locked();
    lc_telemetry::reset();
    lc_telemetry::flight::arm(0);

    let dir = std::env::temp_dir().join(format!("lc-observability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dump = dir.join("flight.jsonl");
    let _ = std::fs::remove_file(&dump);

    let (server, drain) = boot(ServeConfig {
        worker_threads: 1,
        pool_threads: 1,
        drain_deadline_ms: 1,
        flight_dump: Some(dump.clone()),
        ..ServeConfig::default()
    });
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    // A pack big enough to still be encoding when drain fires.
    let client = Client::new(addr);
    let payload: Vec<u8> = (0..32u32 * 1024 * 1024 / 4)
        .flat_map(|i| (i % 251).to_le_bytes())
        .collect();
    let worker = std::thread::spawn(move || {
        client.request_once(
            &Request {
                op: Op::Pack,
                deadline_ms: 0,
                pipeline: "DIFF_4 RZE_4".to_string(),
                payload,
            },
            77,
        )
    });
    std::thread::sleep(Duration::from_millis(60));
    drain.cancel();
    let summary = handle.join().expect("server thread");
    let _ = worker.join();

    assert!(summary.hard_aborted, "drain escalated: {summary:?}");
    assert!(summary.accounted(), "{summary:?}");

    let text = std::fs::read_to_string(&dump).expect("dump published");
    let (_meta, records) = parse_dump(&text);
    fn named<'a>(records: &'a [Value], name: &'a str) -> impl Iterator<Item = &'a Value> + 'a {
        records
            .iter()
            .filter(move |r| r.get("name").and_then(Value::as_str) == Some(name))
    }
    assert!(
        named(&records, "serve.hard_abort").count() >= 1,
        "hard abort recorded"
    );

    // The three summary notes carry six fields; fold them into one map
    // and compare against the returned summary.
    let field = |key: &str| {
        named(&records, "serve.summary")
            .find_map(|r| r.get(key).and_then(Value::as_u64))
            .unwrap_or_else(|| panic!("summary note field {key}"))
    };
    assert_eq!(field("requests_in"), summary.requests_in);
    assert_eq!(field("responses_ok"), summary.responses_ok);
    assert_eq!(field("responses_err"), summary.responses_err);
    assert_eq!(field("sheds"), summary.sheds);
    assert_eq!(
        field("response_write_failed"),
        summary.response_write_failed
    );
    assert_eq!(field("hard_aborted"), 1);

    lc_telemetry::flight::disarm();
    let _ = std::fs::remove_file(&dump);
}

/// The `debug` op ships the black box over the wire when armed, and
/// degrades to a structured usage error when it is not.
#[test]
fn debug_op_round_trips_the_flight_recorder() {
    let _g = locked();
    lc_telemetry::reset();
    lc_telemetry::flight::arm(0);
    lc_telemetry::flight::note("test.debug_op", &[("marker", 41)]);

    let (server, drain) = boot(ServeConfig {
        worker_threads: 1,
        pool_threads: 1,
        ..ServeConfig::default()
    });
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());
    let client = Client::new(addr);
    let debug_req = Request {
        op: Op::Debug,
        deadline_ms: 2_000,
        pipeline: String::new(),
        payload: Vec::new(),
    };

    let resp = client.request_with_retry(&debug_req, 5).expect("exchange");
    let Response::Ok(body) = resp else {
        panic!("debug op succeeds while armed: {resp:?}");
    };
    let text = String::from_utf8(body).expect("dump is utf-8");
    let (_meta, records) = parse_dump(&text);
    assert!(
        records.iter().any(|r| {
            r.get("name").and_then(Value::as_str) == Some("test.debug_op")
                && r.get("marker").and_then(Value::as_u64) == Some(41)
        }),
        "the note recorded before the request is in the wire dump"
    );

    lc_telemetry::flight::disarm();
    let resp = client.request_with_retry(&debug_req, 6).expect("exchange");
    assert!(
        matches!(
            resp,
            Response::Err {
                kind: ErrorKind::Usage,
                ..
            }
        ),
        "disarmed recorder is a structured usage error: {resp:?}"
    );

    drain.cancel();
    let summary = handle.join().expect("server thread");
    assert!(summary.accounted(), "{summary:?}");
}

/// The capacity sweep steps offered load, keeps per-step accounting,
/// and reports a knee within the shed tolerance.
#[test]
fn rate_sweep_records_steps_and_a_knee() {
    let _g = locked();
    lc_telemetry::reset();

    let (server, drain) = boot(ServeConfig {
        worker_threads: 4,
        pool_threads: 2,
        ..ServeConfig::default()
    });
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let sweep = loadgen::rate_sweep(&RateSweepConfig {
        base: LoadgenConfig {
            addr,
            workers: 4,
            seed: 3,
            deadline_ms: 10_000,
            ..LoadgenConfig::default()
        },
        rate_start: 20.0,
        rate_max: 40.0,
        rate_factor: 2.0,
        // Generous tolerance: this asserts mechanics, not capacity.
        shed_threshold: 0.9,
        step_duration: Duration::from_millis(300),
    });

    drain.cancel();
    let summary = handle.join().expect("server thread");
    lc_telemetry::disable();
    assert!(summary.accounted(), "{summary:?}");

    assert!(
        !sweep.steps.is_empty() && sweep.steps.len() <= 2,
        "20 -> 40 rps is at most two steps: {:?}",
        sweep.steps
    );
    for s in &sweep.steps {
        assert!(s.offered_rps > 0.0);
        assert!((0.0..=1.0).contains(&s.shed_rate), "{s:?}");
    }
    assert!(
        sweep.knee_offered_rps > 0.0,
        "an unshed step becomes the knee: {sweep:?}"
    );
    assert!(sweep.knee_goodput_rps > 0.0);

    let v = sweep.to_json();
    assert!(v.get("steps").and_then(Value::as_array).is_some());
    assert!(v.get("knee_offered_rps").and_then(Value::as_f64).is_some());
    assert!(v.get("knee_goodput_rps").and_then(Value::as_f64).is_some());
    assert!(v.get("shed_threshold").and_then(Value::as_f64).is_some());
}
