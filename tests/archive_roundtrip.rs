//! Cross-crate integration: every pipeline shape must round-trip through
//! the real archive format on realistic (synthetic SP) data.

use lc_repro::lc_components::{all, lookup, parse_pipeline, reducers};
use lc_repro::lc_core::{archive, CHUNK_SIZE};
use lc_repro::lc_data::{file_by_name, generate, Scale};
use lc_repro::lc_parallel::Pool;

fn sp_bytes(name: &str) -> Vec<u8> {
    generate(file_by_name(name).unwrap(), Scale::tiny())
}

fn roundtrip(pipeline_text: &str, data: &[u8]) -> usize {
    let p = parse_pipeline(pipeline_text).unwrap_or_else(|e| panic!("{pipeline_text}: {e}"));
    let pool = Pool::new(4);
    let enc = archive::encode(&p, data, &pool);
    let dec = archive::decode(&enc, lookup, &pool)
        .unwrap_or_else(|e| panic!("{pipeline_text}: decode failed: {e}"));
    assert_eq!(dec, data, "{pipeline_text}: round-trip mismatch");
    enc.len()
}

#[test]
fn every_component_roundtrips_as_a_single_stage_on_sp_data() {
    let data = sp_bytes("obs_temp");
    for c in all() {
        // Single-stage pipelines are legal in lc-core (the 3-stage +
        // reducer-last restriction is a property of the *study*, §5).
        roundtrip(c.name(), &data);
    }
}

#[test]
fn representative_three_stage_pipelines_roundtrip_on_every_file() {
    let pipelines = [
        "DBEFS_4 DIFF_4 RZE_4",
        "DBESF_4 DIFFMS_4 RARE_4",
        "TUPL2_1 BIT_1 RLE_1",
        "BIT_8 TCNB_8 HCLOG_8",
        "RLE_4 RLE_4 RLE_4", // reducers stack
        "RZE_2 DIFFNB_2 RRE_2",
        "TUPL8_4 DBEFS_8 RAZE_1", // mixed word sizes
    ];
    for file in &lc_repro::lc_data::SP_FILES {
        let data = generate(file, Scale::tiny());
        for p in pipelines {
            roundtrip(p, &data);
        }
    }
}

#[test]
fn every_reducer_in_final_stage_roundtrips() {
    let data = sp_bytes("num_control");
    for r in reducers() {
        roundtrip(&format!("DBEFS_4 DIFF_4 {}", r.name()), &data);
    }
}

#[test]
fn compresses_sp_data() {
    // The flagship pipeline must actually compress the synthetic dataset.
    let data = sp_bytes("num_brain");
    let size = roundtrip("DBESF_4 DIFFMS_4 RARE_4", &data);
    assert!(
        size < data.len() * 3 / 4,
        "expected >1.33x ratio, got {} -> {}",
        data.len(),
        size
    );
}

#[test]
fn pathological_inputs_roundtrip() {
    let cases: Vec<Vec<u8>> = vec![
        vec![],
        vec![0],
        vec![0xFF; 7],
        vec![0; CHUNK_SIZE],
        vec![0xAB; CHUNK_SIZE + 1],
        (0..CHUNK_SIZE * 3 + 17).map(|i| (i % 256) as u8).collect(),
        f32::NAN.to_le_bytes().repeat(5000),
        (-9999.0f32).to_le_bytes().repeat(4096),
    ];
    for data in &cases {
        roundtrip("DBEFS_4 DIFF_4 RZE_4", data);
        roundtrip("BIT_4 TCMS_4 RLE_4", data);
        roundtrip("RARE_8 RAZE_8 HCLOG_8", data);
    }
}

#[test]
fn truncated_archives_error_never_panic() {
    let data = sp_bytes("obs_info");
    let p = parse_pipeline("DBEFS_4 DIFF_4 RZE_4").unwrap();
    let pool = Pool::new(2);
    let enc = archive::encode(&p, &data, &pool);
    // Cut at a spread of positions including header, table, and payload.
    for frac in [0usize, 1, 2, 5, 10, 30, 60, 90, 99] {
        let cut = enc.len() * frac / 100;
        let _ = archive::decode(&enc[..cut], lookup, &pool); // must not panic
    }
}

#[test]
fn bitflipped_archives_error_never_panic() {
    let data = sp_bytes("msg_sweep3d");
    let p = parse_pipeline("TCMS_4 DIFF_4 CLOG_4").unwrap();
    let pool = Pool::new(2);
    let enc = archive::encode(&p, &data, &pool);
    for pos in (0..enc.len()).step_by(enc.len() / 200 + 1) {
        let mut corrupted = enc.clone();
        corrupted[pos] ^= 0x55;
        // Either an error or a "successful" decode of different bytes —
        // but never a panic or an out-of-bounds access.
        let _ = archive::decode(&corrupted, lookup, &pool);
    }
}

#[test]
fn parallel_and_serial_encoders_agree() {
    let data = sp_bytes("num_comet");
    let p = parse_pipeline("DBEFS_4 DIFFMS_4 RARE_4").unwrap();
    let serial = archive::encode(&p, &data, &Pool::new(1));
    let parallel = archive::encode(&p, &data, &Pool::new(8));
    assert_eq!(serial, parallel, "archive bytes must be deterministic");
}

#[test]
fn archive_is_self_describing() {
    let data = sp_bytes("obs_error");
    let p = parse_pipeline("TUPL4_2 BIT_2 RZE_2").unwrap();
    let pool = Pool::new(2);
    let enc = archive::encode(&p, &data, &pool);
    let header = archive::parse_header(&enc).unwrap();
    assert_eq!(header.stage_names, vec!["TUPL4_2", "BIT_2", "RZE_2"]);
    assert_eq!(header.original_len as usize, data.len());
}
