//! Serve-layer telemetry integration: drive a live server with a known
//! request count and assert the accept-queue metrics and span stream
//! match the traffic actually served.
//!
//! Telemetry state is process-global, so every test here takes one
//! mutex and starts from `reset()`.

use std::sync::Mutex;

use lc_repro::lc_parallel::CancelToken;
use lc_repro::lc_serve::proto::{Op, Request, Response};
use lc_repro::lc_serve::server::{ServeConfig, Server};
use lc_repro::lc_serve::Client;
use lc_repro::lc_telemetry;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn boot() -> (Server, CancelToken) {
    let drain = CancelToken::new();
    let server = Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 2,
            pool_threads: 2,
            queue_capacity: 16,
            drain_deadline_ms: 5_000,
            ..ServeConfig::default()
        },
        drain.clone(),
    )
    .expect("bind");
    (server, drain)
}

#[test]
fn queue_metrics_and_execute_spans_match_traffic() {
    let _g = locked();
    lc_telemetry::reset();
    lc_telemetry::enable();

    let (server, drain) = boot();
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    const REQUESTS: u64 = 5;
    let client = Client::new(addr);
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i / 32) as u8).collect();
    for i in 0..REQUESTS {
        let resp = client
            .request_with_retry(
                &Request {
                    op: Op::Pack,
                    deadline_ms: 10_000,
                    pipeline: "DIFF_4 RZE_4".to_string(),
                    payload: payload.clone(),
                },
                100 + i,
            )
            .expect("exchange");
        assert!(matches!(resp, Response::Ok(_)), "request {i}: {resp:?}");
    }

    drain.cancel();
    let summary = handle.join().expect("server thread");
    let events = lc_telemetry::drain();
    lc_telemetry::disable();

    assert_eq!(summary.requests_in, REQUESTS);
    assert!(summary.accounted(), "{summary:?}");

    // serve.time_in_queue_us: one sample per connection handed from the
    // accept queue to a worker — connect-per-request, so one per request.
    let hist = lc_telemetry::histogram("serve.time_in_queue_us");
    assert_eq!(
        hist.count(),
        REQUESTS,
        "one queue-wait sample per accepted connection"
    );

    // serve.queue_depth: set on every push (with the connection still
    // queued) and every pop, so its peak is at least 1 and it ends at 0.
    let gauges = lc_telemetry::metrics::gauge_snapshot();
    let (_, depth_now, depth_max) = gauges
        .iter()
        .find(|(name, _, _)| *name == "serve.queue_depth")
        .copied()
        .expect("serve.queue_depth gauge exists");
    assert!(depth_max >= 1, "peak queue depth observed: {depth_max}");
    assert_eq!(depth_now, 0, "queue fully drained");

    // One execute span per request, in the serve category.
    let execute_spans = events
        .iter()
        .filter(|e| e.cat == "serve" && e.name == "execute")
        .count() as u64;
    assert_eq!(execute_spans, REQUESTS, "one execute span per request");
}

#[test]
fn shed_and_governor_metrics_reflect_admission_refusals() {
    let _g = locked();
    lc_telemetry::reset();
    lc_telemetry::enable();

    let drain = CancelToken::new();
    let server = Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 2,
            pool_threads: 1,
            queue_capacity: 16,
            // Any payload-carrying request overflows this budget.
            mem_budget_bytes: Some(4 * 1024),
            drain_deadline_ms: 5_000,
            ..ServeConfig::default()
        },
        drain.clone(),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let client = Client::new(addr);
    let err = client
        .request_with_retry(
            &Request {
                op: Op::Pack,
                deadline_ms: 5_000,
                pipeline: "DIFF_4 RZE_4".to_string(),
                payload: vec![7u8; 256 * 1024],
            },
            42,
        )
        .expect_err("every attempt should be shed");
    let msg = err.to_string();
    assert!(msg.contains("shed"), "retries exhausted by sheds: {msg}");

    drain.cancel();
    let summary = handle.join().expect("server thread");
    lc_telemetry::disable();

    assert!(summary.accounted(), "{summary:?}");
    assert!(summary.sheds >= 1, "server shed the request: {summary:?}");
    let counters = lc_telemetry::metrics::counter_snapshot();
    let shed_mem = counters
        .iter()
        .find(|(name, _)| *name == "serve.shed_mem")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(shed_mem >= 1, "serve.shed_mem counted the refusals");
}
