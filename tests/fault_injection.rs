//! Systematic fault injection: corrupt every byte position class of
//! encoded payloads and archives, and require that decoders fail *softly*
//! — an error or a differing (but bounded) output, never a panic, hang,
//! or unbounded allocation.

use lc_repro::lc_components::{all, lookup, parse_pipeline};
use lc_repro::lc_core::{archive, KernelStats, CHUNK_SIZE};
use lc_repro::lc_parallel::Pool;

/// Deterministic pattern with mixed structure so every reducer both
/// applies and skips somewhere.
fn test_chunk() -> Vec<u8> {
    let mut v = Vec::with_capacity(CHUNK_SIZE);
    for i in 0..CHUNK_SIZE / 4 {
        let word: u32 = match i % 7 {
            0 | 1 => 0,                               // zero runs
            2 => 0xDEAD_BEEF,                         // repeated value
            3 => (i as u32).wrapping_mul(2654435761), // noise
            _ => 1000 + (i as u32 % 50),              // small values
        };
        v.extend_from_slice(&word.to_le_bytes());
    }
    v
}

#[test]
fn single_bitflips_in_every_component_payload() {
    let chunk = test_chunk();
    for c in all() {
        let mut enc = Vec::new();
        c.encode_chunk(&chunk, &mut enc, &mut KernelStats::new());
        // Flip one bit in a spread of positions (every ~97th byte, all 8
        // bit positions cycled) — cheap but position-diverse.
        for (k, pos) in (0..enc.len()).step_by(97).enumerate() {
            let mut bad = enc.clone();
            bad[pos] ^= 1 << (k % 8);
            let mut out = Vec::new();
            // Must return (Ok with different bytes, or Err) — not panic.
            let _ = c.decode_chunk(&bad, &mut out, &mut KernelStats::new());
            // Defensive: decoders must not explode output unboundedly.
            assert!(
                out.len() <= CHUNK_SIZE * 4 + 64,
                "{}: output ballooned to {} bytes",
                c.name(),
                out.len()
            );
        }
    }
}

#[test]
fn truncations_at_every_length_for_every_component() {
    let chunk = &test_chunk()[..2048];
    for c in all() {
        let mut enc = Vec::new();
        c.encode_chunk(chunk, &mut enc, &mut KernelStats::new());
        for cut in 0..enc.len().min(256) {
            let mut out = Vec::new();
            let _ = c.decode_chunk(&enc[..cut], &mut out, &mut KernelStats::new());
        }
        // Also truncate from a spread of longer positions.
        for cut in (256..enc.len()).step_by(53) {
            let mut out = Vec::new();
            let _ = c.decode_chunk(&enc[..cut], &mut out, &mut KernelStats::new());
        }
    }
}

#[test]
fn extended_payloads_do_not_confuse_decoders() {
    // Trailing garbage after a valid encoding: decoders either ignore it
    // (framing gives exact lengths in real archives) or error — no panic.
    let chunk = &test_chunk()[..4096];
    for c in all() {
        let mut enc = Vec::new();
        c.encode_chunk(chunk, &mut enc, &mut KernelStats::new());
        enc.extend_from_slice(&[0xAA; 64]);
        let mut out = Vec::new();
        let _ = c.decode_chunk(&enc, &mut out, &mut KernelStats::new());
    }
}

#[test]
fn archive_header_field_fuzzing() {
    let data = test_chunk().repeat(3);
    let pool = Pool::new(2);
    let p = parse_pipeline("TCMS_4 DIFF_4 RZE_4").unwrap();
    let enc = archive::encode(&p, &data, &pool);
    // Mutate every header byte through several values.
    let header_len = archive::parse_header(&enc).unwrap().payload_offset.min(64);
    for pos in 0..header_len {
        for val in [0x00u8, 0xFF, 0x80, enc[pos].wrapping_add(1)] {
            let mut bad = enc.clone();
            bad[pos] = val;
            let _ = archive::decode(&bad, lookup, &pool); // must not panic
        }
    }
}

#[test]
fn archive_chunk_table_lies() {
    // Declare wrong stored lengths in the chunk table specifically.
    let data = test_chunk().repeat(2);
    let pool = Pool::new(2);
    let p = parse_pipeline("TCMS_4 DIFF_4 RZE_4").unwrap();
    let enc = archive::encode(&p, &data, &pool);
    let h = archive::parse_header(&enc).unwrap();
    for chunk_idx in 0..h.chunks as usize {
        let len_pos = h.table_offset + chunk_idx * h.entry_size() + 1;
        for lie in [0u32, 1, u32::MAX, 0x7FFF_FFFF] {
            let mut bad = enc.clone();
            bad[len_pos..len_pos + 4].copy_from_slice(&lie.to_le_bytes());
            let _ = archive::decode(&bad, lookup, &pool);
            // Salvage must also survive table lies: it either hard-errors
            // or returns a report, never panics.
            if let Ok((out, report)) = archive::decode_salvage(&bad, lookup, &pool) {
                assert_eq!(out.len() as u64, h.original_len);
                assert_eq!(report.recovered + report.lost, h.chunks);
            }
        }
    }
}

/// splitmix64 — tiny seeded generator so the corruption fuzz below is
/// reproducible from the printed seed without external dependencies.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn seeded_multibyte_corruption_decode_and_salvage() {
    let data = test_chunk().repeat(4);
    let pool = Pool::new(4);
    let p = parse_pipeline("TCMS_4 DIFF_4 RZE_4").unwrap();
    let enc = archive::encode(&p, &data, &pool);
    let h = archive::parse_header(&enc).unwrap();
    for seed in 0..64u64 {
        let mut rng = Mix(seed);
        let mut bad = enc.clone();
        // 1..=8 corrupted bytes scattered anywhere in the archive.
        let hits = 1 + (rng.next() % 8) as usize;
        for _ in 0..hits {
            let pos = (rng.next() % bad.len() as u64) as usize;
            bad[pos] ^= (rng.next() % 255 + 1) as u8;
        }
        // Strict decode: error or (if the corruption landed in slack
        // bytes) success — never a panic.
        let strict = archive::decode(&bad, lookup, &pool);
        // Salvage: same no-panic guarantee, plus a coherent report
        // whenever the header survived.
        match archive::decode_salvage(&bad, lookup, &pool) {
            Ok((out, report)) => {
                let bh = archive::parse_header(&bad).unwrap();
                assert_eq!(out.len() as u64, bh.original_len, "seed {seed}");
                assert_eq!(report.recovered + report.lost, bh.chunks, "seed {seed}");
                assert_eq!(report.lost as usize, report.errors.len(), "seed {seed}");
                // Salvage never does worse than strict decode: if strict
                // succeeded the archive was intact enough for a full
                // recovery of every chunk.
                if strict.is_ok() {
                    assert_eq!(report.lost, 0, "seed {seed}");
                    assert_eq!(report.recovered, h.chunks, "seed {seed}");
                }
            }
            Err(_) => {
                // Hard salvage errors are reserved for unusable headers /
                // tables / unknown components; strict decode must agree
                // that this archive is undecodable.
                assert!(
                    strict.is_err(),
                    "seed {seed}: salvage refused a decodable archive"
                );
            }
        }
    }
}

#[test]
fn header_field_mutation_against_salvage() {
    let data = test_chunk().repeat(3);
    let pool = Pool::new(2);
    let p = parse_pipeline("TCMS_4 DIFF_4 RZE_4").unwrap();
    let enc = archive::encode(&p, &data, &pool);
    let header_len = archive::parse_header(&enc).unwrap().payload_offset.min(64);
    for pos in 0..header_len {
        for val in [0x00u8, 0xFF, 0x80, enc[pos].wrapping_add(1)] {
            let mut bad = enc.clone();
            bad[pos] = val;
            let _ = archive::decode_salvage(&bad, lookup, &pool); // must not panic
        }
    }
}

#[test]
fn mid_stream_truncation_decode_and_salvage() {
    let data = test_chunk().repeat(4);
    let pool = Pool::new(4);
    let p = parse_pipeline("TCMS_4 DIFF_4 RZE_4").unwrap();
    let enc = archive::encode(&p, &data, &pool);
    let h = archive::parse_header(&enc).unwrap();
    let step = (enc.len() / 150).max(1);
    for cut in (0..enc.len()).step_by(step) {
        let trunc = &enc[..cut];
        // Strict decode of a truncated archive must error (the payload
        // size check catches every cut past the header).
        assert!(archive::decode(trunc, lookup, &pool).is_err(), "cut {cut}");
        match archive::decode_salvage(trunc, lookup, &pool) {
            Ok((out, report)) => {
                // Header + table survived: salvage recovers the chunks
                // whose payload extent is still fully present.
                assert!(cut >= h.payload_offset, "cut {cut} inside header salvaged");
                assert_eq!(out.len() as u64, h.original_len);
                assert_eq!(report.recovered + report.lost, h.chunks);
                assert!(report.lost >= 1, "cut {cut}: truncation must lose a chunk");
            }
            Err(_) => {
                assert!(cut < h.payload_offset, "cut {cut} past header must salvage");
            }
        }
    }
    // Full-length sanity: untruncated archive salvages cleanly.
    let (out, report) = archive::decode_salvage(&enc, lookup, &pool).unwrap();
    assert_eq!(out, data);
    assert!(report.is_clean());
}

#[test]
fn mask_lies_flip_stage_application() {
    // Claim stages were (not) applied: the decoder must process whatever
    // the mask says against whatever bytes exist and fail gracefully.
    let data = test_chunk();
    let pool = Pool::new(2);
    let p = parse_pipeline("TCMS_4 DIFF_4 RZE_4").unwrap();
    let enc = archive::encode(&p, &data, &pool);
    let h = archive::parse_header(&enc).unwrap();
    for mask in 0..8u8 {
        let mut bad = enc.clone();
        bad[h.table_offset] = mask;
        let _ = archive::decode(&bad, lookup, &pool);
    }
}
