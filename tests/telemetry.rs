//! Cross-crate telemetry integration: encode/decode a known chunk count
//! through a 2-stage pipeline and assert the span stream matches the
//! work actually done.
//!
//! Telemetry state is process-global, so every test here takes one
//! mutex and starts from `reset()`.

use std::sync::Mutex;

use lc_repro::lc_core::{archive, CHUNK_SIZE};
use lc_repro::lc_parallel::Pool;
use lc_repro::lc_telemetry;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Compressible input spanning a known number of chunks.
fn input(chunks: usize) -> Vec<u8> {
    let n = CHUNK_SIZE * (chunks - 1) + 10; // last chunk partial
    (0..n).map(|i| (i / 64) as u8).collect()
}

fn two_stage_pipeline() -> lc_repro::lc_core::Pipeline {
    lc_repro::lc_components::parse_pipeline("DIFF_1 RZE_1").unwrap()
}

#[test]
fn one_encode_span_per_chunk_and_stage() {
    let _g = locked();
    lc_telemetry::reset();
    lc_telemetry::enable();

    let chunks = 4;
    let data = input(chunks);
    let pipeline = two_stage_pipeline();
    let pool = Pool::new(2);
    let encoded = archive::encode(&pipeline, &data, &pool);
    let events = lc_telemetry::drain();
    lc_telemetry::disable();

    let stage_spans: Vec<_> = events.iter().filter(|e| e.cat == "stage.encode").collect();
    assert_eq!(stage_spans.len(), chunks * 2, "one span per (chunk, stage)");

    // Each (chunk, stage) pair appears exactly once.
    let mut seen = std::collections::HashSet::new();
    for ev in &stage_spans {
        let chunk = ev
            .args
            .iter()
            .find_map(|(k, v)| match v {
                lc_telemetry::ArgValue::U64(n) if *k == "chunk" => Some(*n),
                _ => None,
            })
            .expect("stage span carries chunk index");
        assert!(seen.insert((ev.name, chunk)));
    }

    // The encode-level span and the pool span are present too.
    assert_eq!(
        events.iter().filter(|e| e.name == "archive.encode").count(),
        1
    );
    assert!(events.iter().any(|e| e.cat == "pool" && e.name == "run"));

    // Decode mirrors encode: every stage the encoder applied (or
    // skipped) produces exactly one stage.decode span per chunk.
    lc_telemetry::reset();
    lc_telemetry::enable();
    let out = archive::decode(&encoded, lc_repro::lc_components::lookup, &pool).unwrap();
    let events = lc_telemetry::drain();
    lc_telemetry::disable();
    assert_eq!(out, data);
    let decode_spans = events.iter().filter(|e| e.cat == "stage.decode").count();
    assert_eq!(decode_spans, chunks * 2);
}

#[test]
fn chrome_trace_export_of_a_real_encode_is_loadable() {
    let _g = locked();
    lc_telemetry::reset();
    lc_telemetry::enable();

    let data = input(3);
    let pool = Pool::new(2);
    archive::encode(&two_stage_pipeline(), &data, &pool);
    let events = lc_telemetry::drain();
    lc_telemetry::disable();

    let text = lc_telemetry::export::chrome_trace(&events);
    let v = lc_repro::lc_json::Value::parse(&text).expect("trace is valid JSON");
    let arr = v
        .get("traceEvents")
        .and_then(lc_repro::lc_json::Value::as_array)
        .expect("traceEvents");
    assert_eq!(arr.len(), events.len());
    for ev in arr {
        assert_eq!(
            ev.get("ph").and_then(lc_repro::lc_json::Value::as_str),
            Some("X")
        );
    }
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _g = locked();
    lc_telemetry::reset();
    lc_telemetry::disable();

    let data = input(2);
    let pool = Pool::new(2);
    archive::encode(&two_stage_pipeline(), &data, &pool);
    assert!(lc_telemetry::drain().is_empty());
}
