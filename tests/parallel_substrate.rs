//! Stress tests for the parallel substrate: the decoupled look-back scan
//! and the pool must be correct under contention, because the archive
//! encoder's output placement depends on them.

use proptest::prelude::*;

use lc_repro::lc_parallel::{scan::parallel_exclusive_scan, LookbackScan, Pool};

#[test]
fn scan_stress_many_threads_many_rounds() {
    // Repeat to give races a chance to manifest.
    let pool = Pool::new(8);
    for round in 0..50 {
        let n = 64 + round * 37;
        let values: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 10_000).collect();
        let (prefixes, total) = parallel_exclusive_scan(&pool, &values);
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(prefixes[i], acc, "round {round}, index {i}");
            acc += v;
        }
        assert_eq!(total, acc);
    }
}

#[test]
fn scan_with_out_of_order_publication() {
    // Publish in reverse order from one thread per participant: the scan
    // must still resolve, because every predecessor eventually publishes.
    let scan = std::sync::Arc::new(LookbackScan::new(32));
    let results = std::sync::Arc::new(std::sync::Mutex::new(vec![0u64; 32]));
    let mut handles = Vec::new();
    for i in (0..32usize).rev() {
        let scan = scan.clone();
        let results = results.clone();
        handles.push(std::thread::spawn(move || {
            // Stagger so later participants publish first.
            std::thread::sleep(std::time::Duration::from_millis((i as u64) % 7));
            let excl = scan.publish(i, (i + 1) as u64);
            results.lock().unwrap()[i] = excl;
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let results = results.lock().unwrap();
    for (i, &excl) in results.iter().enumerate() {
        let expected: u64 = (1..=i as u64).sum();
        assert_eq!(excl, expected, "participant {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scan_matches_sequential_reference(
        values in proptest::collection::vec(0u64..1_000_000, 0..500),
        threads in 1usize..12,
    ) {
        let pool = Pool::new(threads);
        let (prefixes, total) = parallel_exclusive_scan(&pool, &values);
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(prefixes[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn pool_fold_is_order_independent(
        values in proptest::collection::vec(0u64..1_000, 1..2000),
        threads in 1usize..12,
    ) {
        let pool = Pool::new(threads);
        let sum = pool.fold(
            values.len(),
            || 0u64,
            |acc, i| *acc += values[i],
            |a, b| a + b,
        );
        prop_assert_eq!(sum, values.iter().sum::<u64>());
    }

    #[test]
    fn pool_map_matches_serial(
        n in 0usize..3000,
        threads in 1usize..12,
    ) {
        let pool = Pool::new(threads);
        let parallel = pool.map(n, |i| i * 31 + 7);
        let serial: Vec<usize> = (0..n).map(|i| i * 31 + 7).collect();
        prop_assert_eq!(parallel, serial);
    }
}
