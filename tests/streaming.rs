//! Streaming-format integration tests: the `lc-core::stream` path must
//! agree byte-for-byte with the in-memory path's semantics under
//! arbitrary reader chunking and window boundaries.

use proptest::prelude::*;

use lc_repro::lc_components::{lookup, parse_pipeline};
use lc_repro::lc_core::stream::{decode_stream, StreamEncoder};
use lc_repro::lc_core::CHUNK_SIZE;
use lc_repro::lc_parallel::Pool;

/// A reader that yields at most `max` bytes per read call, to exercise
/// short reads.
struct Dribble<'a> {
    data: &'a [u8],
    pos: usize,
    max: usize,
}

impl std::io::Read for Dribble<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.max).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn stream_roundtrip(data: &[u8], read_size: usize) -> Vec<u8> {
    let pipeline = parse_pipeline("DBEFS_4 DIFF_4 RZE_4").unwrap();
    let pool = Pool::new(4);
    let enc = StreamEncoder::new(&pipeline, pool);
    let mut compressed = Vec::new();
    let mut reader = Dribble {
        data,
        pos: 0,
        max: read_size.max(1),
    };
    enc.encode(&mut reader, &mut compressed).unwrap();
    let mut out = Vec::new();
    let pool = Pool::new(4);
    decode_stream(&mut &compressed[..], &mut out, lookup, &pool).unwrap();
    assert_eq!(out, data);
    compressed
}

#[test]
fn short_reads_do_not_change_the_output() {
    let data: Vec<u8> = (0..CHUNK_SIZE * 5 + 77).map(|i| (i / 32) as u8).collect();
    let a = stream_roundtrip(&data, usize::MAX);
    let b = stream_roundtrip(&data, 1000);
    let c = stream_roundtrip(&data, 7);
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn window_boundaries() {
    let window = StreamEncoder::WINDOW_CHUNKS * CHUNK_SIZE;
    for len in [window - 1, window, window + 1, window * 2 + CHUNK_SIZE / 2] {
        let data: Vec<u8> = (0..len).map(|i| (i % 97) as u8).collect();
        stream_roundtrip(&data, usize::MAX);
    }
}

#[test]
fn streamed_sp_files_roundtrip() {
    for name in ["obs_temp", "msg_sweep3d", "num_plasma"] {
        let file = lc_repro::lc_data::file_by_name(name).unwrap();
        let data = lc_repro::lc_data::generate(file, lc_repro::lc_data::Scale::tiny());
        stream_roundtrip(&data, 4096);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_data_and_read_sizes(
        data in proptest::collection::vec(any::<u8>(), 0..100_000),
        read_size in 1usize..70_000,
    ) {
        stream_roundtrip(&data, read_size);
    }
}
