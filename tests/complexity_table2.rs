//! Paper Table 2: work complexity and span of every component's encoder
//! and decoder, checked two ways — the declared metadata must match the
//! table, and the *measured* kernel statistics must scale the way the
//! declared class predicts.

use lc_repro::lc_components::{all, lookup};
use lc_repro::lc_core::component::family_of;
use lc_repro::lc_core::{KernelStats, SpanClass, WorkClass};

/// Expected Table 2 row for a family:
/// (enc work, enc span, dec work, dec span).
fn table2(family: &str) -> (WorkClass, SpanClass, WorkClass, SpanClass) {
    use SpanClass::*;
    use WorkClass::*;
    match family {
        "DBEFS" | "DBESF" | "TCMS" | "TCNB" => (N, Const, N, Const),
        "BIT" => (NLogW, LogW, NLogW, LogW),
        "TUPL" => (N, Const, N, Const),
        "DIFF" | "DIFFMS" | "DIFFNB" => (N, Const, N, LogN),
        "CLOG" | "HCLOG" => (N, Const, N, Const),
        "RARE" | "RAZE" => (N, LogN, N, LogN),
        "RLE" => (N, LogN, N, Const),
        "RRE" | "RZE" => (N, LogN, N, LogN),
        other => panic!("unknown family {other}"),
    }
}

#[test]
fn declared_complexity_matches_table2() {
    for c in all() {
        let (ew, es, dw, ds) = table2(family_of(c.name()));
        let cx = c.complexity();
        assert_eq!(cx.enc_work, ew, "{} enc work", c.name());
        assert_eq!(cx.enc_span, es, "{} enc span", c.name());
        assert_eq!(cx.dec_work, dw, "{} dec work", c.name());
        assert_eq!(cx.dec_span, ds, "{} dec span", c.name());
    }
}

fn enc_stats(name: &str, data: &[u8]) -> KernelStats {
    let c = lookup(name).unwrap();
    let mut s = KernelStats::new();
    c.encode_chunk(data, &mut Vec::new(), &mut s);
    s
}

fn dec_stats(name: &str, data: &[u8]) -> KernelStats {
    let c = lookup(name).unwrap();
    let mut enc = Vec::new();
    c.encode_chunk(data, &mut enc, &mut KernelStats::new());
    let mut s = KernelStats::new();
    c.decode_chunk(&enc, &mut Vec::new(), &mut s).unwrap();
    s
}

#[test]
fn measured_work_is_linear_in_n() {
    // Θ(n) work: doubling the input must (about) double thread_ops.
    let a: Vec<u8> = (0..4096).map(|i| (i % 13) as u8).collect();
    let b: Vec<u8> = (0..8192).map(|i| (i % 13) as u8).collect();
    for c in all() {
        let sa = enc_stats(c.name(), &a);
        let sb = enc_stats(c.name(), &b);
        let ratio = sb.thread_ops as f64 / sa.thread_ops.max(1) as f64;
        assert!(
            (1.5..=2.6).contains(&ratio),
            "{}: ops ratio {ratio} for 2x input",
            c.name()
        );
    }
}

#[test]
fn bit_work_carries_the_log_w_factor() {
    // Table 2: BIT is the only Θ(n log w) family — per *word*, ops grow
    // with log of the word width; per *byte* they shrink as words widen,
    // and the per-word ratio between BIT_8 and BIT_1 must be log(64)/log(8).
    let data: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
    let s1 = enc_stats("BIT_1", &data);
    let s8 = enc_stats("BIT_8", &data);
    let per_word_1 = s1.thread_ops as f64 / s1.words as f64;
    let per_word_8 = s8.thread_ops as f64 / s8.words as f64;
    assert!(
        (per_word_1 - 3.0).abs() < 0.5,
        "log2(8) = 3, got {per_word_1}"
    );
    assert!(
        (per_word_8 - 6.0).abs() < 0.5,
        "log2(64) = 6, got {per_word_8}"
    );
    // A same-word-size Θ(n) component has no such growth.
    let t1 = enc_stats("TCMS_1", &data);
    let t8 = enc_stats("TCMS_8", &data);
    let tcms_growth =
        (t8.thread_ops as f64 / t8.words as f64) / (t1.thread_ops as f64 / t1.words as f64);
    assert!(
        (tcms_growth - 1.0).abs() < 0.01,
        "TCMS per-word ops are flat"
    );
}

#[test]
fn log_n_spans_emit_scan_steps_where_table2_says() {
    let data: Vec<u8> = (0..16384).map(|i| (i % 7) as u8).collect();
    for c in all() {
        let (_, es, _, ds) = table2(family_of(c.name()));
        let se = enc_stats(c.name(), &data);
        let sd = dec_stats(c.name(), &data);
        match es {
            SpanClass::LogN => assert!(se.scan_steps > 0, "{} enc span log n", c.name()),
            SpanClass::Const => {
                assert_eq!(se.scan_steps, 0, "{} enc span is constant", c.name())
            }
            SpanClass::LogW => {}
        }
        match ds {
            SpanClass::LogN => assert!(sd.scan_steps > 0, "{} dec span log n", c.name()),
            SpanClass::Const => {
                assert_eq!(sd.scan_steps, 0, "{} dec span is constant", c.name())
            }
            SpanClass::LogW => {}
        }
    }
}

#[test]
fn scan_steps_grow_logarithmically() {
    // For a log-n-span encoder, 4x the words adds ~2 scan steps.
    let a: Vec<u8> = (0..4096).map(|i| (i % 13) as u8).collect();
    let b: Vec<u8> = (0..16384).map(|i| (i % 13) as u8).collect();
    let sa = enc_stats("RRE_4", &a);
    let sb = enc_stats("RRE_4", &b);
    assert_eq!(sb.scan_steps - sa.scan_steps, 2, "log2(4x) = +2 steps");
}

#[test]
fn diff_decode_is_a_prefix_sum_diff_encode_is_not() {
    // The Table 2 asymmetry the paper highlights for predictors.
    let data: Vec<u8> = (0..16384).map(|i| (i / 3) as u8).collect();
    let e = enc_stats("DIFF_4", &data);
    let d = dec_stats("DIFF_4", &data);
    assert_eq!(e.scan_steps, 0);
    assert!(
        d.scan_steps > 10,
        "prefix sum over 4096 words: {}",
        d.scan_steps
    );
    assert!(d.block_syncs > e.block_syncs);
}

#[test]
fn rle_decode_span_is_constant_unlike_rre() {
    // Table 2: RLE dec span 1, RRE dec span log n.
    let data: Vec<u8> = vec![9u8; 16384];
    let rle = dec_stats("RLE_4", &data);
    let rre = dec_stats("RRE_4", &data);
    assert_eq!(rle.scan_steps, 0, "RLE decode has constant span");
    assert!(rre.scan_steps > 0, "RRE decode needs a scan");
}
